package federate

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/clock"
)

// HA wire records. Three kinds join the original digest/assignment pair
// on the same 'F','D' magic (see wire.go for the framing):
//
// kindPeerBeat (aggregator → aggregator) body — the digest-as-heartbeat
// trick applied one tier up: a compact state summary that doubles as
// the sender's liveness heartbeat in the receiver's SFD registry:
//
//	aggLen(u16) agg  regionLen(u16) region  inc(u64) seq(u64)
//	sentAt(u64) assignVersion(u64) flags(u8: bit0 leader, bit1 ready)
//	leaves(u32) cohorts(u32) fleetStreams(u64)
//
// kindMirror (aggregator → aggregator) body — one anti-entropy chunk of
// the merged fleet view (leaf records, per-cohort epoch counters, the
// versioned assignment table implied by cohort owners, re-delegation
// history). Chunked by encoded size against MirrorMTU as well as by
// record count — with names up to maxNameLen, counts alone cannot keep
// a chunk inside one UDP datagram. Records may land in any chunk;
// merging is per-record and order-independent:
//
//	aggLen(u16) agg  inc(u64) seq(u64) sentAt(u64) assignVersion(u64)
//	leafCount(u16) cohortCount(u16) histCount(u16)
//	then per leaf:   idLen(u16) id addrLen(u16) addr regionLen(u16) region
//	                 weight(f64) inc(u64) lastSeq(u64) lastAt(u64)
//	                 echoedAV(u64) live(u8)
//	then per cohort: filterLen(u16) filter ownerLen(u16) owner
//	                 flags(u8: bit0 orphaned)
//	                 epochLeafLen(u16) epochLeaf epochInc(u64)
//	                 carried suspects/trusts/offlines/evictions(4×u64)
//	                 streams/trusted/suspected/offline(4×u32)
//	                 suspects/trusts/offlines/evictions(4×u64)
//	                 tdSum(f64) mrSum(f64) qapMin(f64) tuned(u32)
//	                 omitted(u32) updatedAt(u64)
//	then per hist:   version(u64) at(u64) deadLen(u16) dead movedCount(u16)
//	                 movedOmitted(u32)
//	                 then per moved: cohortLen(u16) cohort ownerLen(u16) owner
//
// kindAck (aggregator → leaf) body — a tiny per-digest receipt so leaves
// get liveness feedback on their fire-and-forget digest sends:
//
//	aggLen(u16) agg  flags(u8: bit0 leader) assignVersion(u64)
//	echoSeq(u64) sentAt(u64)
const (
	kindPeerBeat uint8 = 3
	kindMirror   uint8 = 4
	kindAck      uint8 = 5

	// MaxMirrorLeaves bounds one mirror chunk's leaf records.
	MaxMirrorLeaves = 128
	// MaxMirrorCohorts bounds one mirror chunk's cohort records; larger
	// fleet views are chunked across datagrams (merging is monotone, so
	// partial application converges on the next round).
	MaxMirrorCohorts = 128
	// MaxMirrorHistory bounds one mirror chunk's re-delegation records.
	MaxMirrorHistory = 16
	// MirrorMTU bounds one mirror chunk's encoded bytes: safely under
	// UDP's 65 507-byte payload ceiling and the transport's 64 KiB
	// receive buffer. The record-count caps above do not bound the
	// encoding on their own (names run up to maxNameLen), so the
	// chunker tracks encoded size against this too.
	MirrorMTU = 60000
)

const (
	beatFlagLeader uint8 = 1 << 0
	beatFlagReady  uint8 = 1 << 1

	cohortFlagOrphaned uint8 = 1 << 0
)

// PeerBeat is an aggregator's compact state heartbeat to its HA peers.
// (Inc, Seq) doubles as the liveness heartbeat in the receiving peer's
// SFD registry, exactly as leaf digests do for leaves.
type PeerBeat struct {
	// Agg is the sending aggregator's identity.
	Agg string
	// Region is informational (beats stay within a region's pair).
	Region string
	// Inc is the aggregator's incarnation, bumped on restart so the
	// peer's detector starts the stream over.
	Inc uint64
	// Seq increases with every beat within one incarnation.
	Seq uint64
	// SentAt is the sender's clock at send (the heartbeat timestamp).
	SentAt clock.Time
	// AssignVersion is the sender's current assignment-table version —
	// the ratchet a promoted standby continues from.
	AssignVersion uint64
	// Leader reports whether the sender currently believes it leads.
	Leader bool
	// Ready is false while the sender is still catching up by
	// anti-entropy after a (re)start; peers exclude non-ready senders
	// from the election so a blank restarted aggregator rejoins as
	// standby instead of reclaiming leadership with an empty view.
	Ready bool
	// Compact state summary, for /fleet peer rows and sanity checks.
	Leaves       uint32
	Cohorts      uint32
	FleetStreams uint64
}

// MirrorLeaf is one leaf record in a mirror chunk.
type MirrorLeaf struct {
	ID       string
	Addr     string
	Region   string
	Weight   float64
	Inc      uint64
	LastSeq  uint64
	LastAt   clock.Time
	EchoedAV uint64
	Live     uint8 // leafLiveness value as seen by the sender
}

// MirrorCohort is one cohort record in a mirror chunk: the owner (one
// row of the versioned assignment table), the current counting epoch,
// and the cumulative transition counters split exactly as the
// aggregator stores them (carried = closed epochs, Last = the live
// epoch) so the receiver can merge without losing a transition.
type MirrorCohort struct {
	Filter   string
	Owner    string
	Orphaned bool

	EpochLeaf string
	EpochInc  uint64

	CarriedSuspects  uint64
	CarriedTrusts    uint64
	CarriedOfflines  uint64
	CarriedEvictions uint64

	// Last is the live epoch's newest digest row. Notable transitions
	// are deliberately not mirrored (the standby hears them first-hand
	// from the dual-sent digests); the encoder ignores the field.
	Last      CohortDigest
	UpdatedAt clock.Time
}

// Mirror is one anti-entropy chunk of an aggregator's fleet view.
type Mirror struct {
	Agg           string
	Inc           uint64
	Seq           uint64
	SentAt        clock.Time
	AssignVersion uint64
	Leaves        []MirrorLeaf
	Cohorts       []MirrorCohort
	History       []RedelegationRecord
}

// Encoded sizes, kept in lockstep with Mirror.Marshal so the chunker
// can budget bytes against MirrorMTU without trial-encoding.

// mirrorHeaderSize is a chunk's fixed overhead before any record.
func mirrorHeaderSize(agg string) int {
	return 4 + 2 + len(agg) + 4*8 + 3*2
}

func (l *MirrorLeaf) wireSize() int {
	return 2 + len(l.ID) + 2 + len(l.Addr) + 2 + len(l.Region) + 5*8 + 1
}

func (c *MirrorCohort) wireSize() int {
	return 2 + len(c.Filter) + 2 + len(c.Owner) + 1 + 2 + len(c.EpochLeaf) +
		8 + 4*8 + 4*4 + 4*8 + 3*8 + 4 + 4 + 8
}

func (h *RedelegationRecord) wireSize() int {
	s := 8 + 8 + 2 + len(h.Dead) + 2 + 4
	for _, e := range h.Moved {
		s += 2 + len(e.Cohort) + 2 + len(e.Owner)
	}
	return s
}

// Ack is an aggregator's per-digest receipt to a leaf: proof of
// reachability (the leaf's unreachable accounting keys off ack
// silence), plus the sender's leadership claim and table version.
type Ack struct {
	Agg           string
	Leader        bool
	AssignVersion uint64
	// EchoSeq echoes the acknowledged digest's sequence number.
	EchoSeq uint64
	SentAt  clock.Time
}

// Message is one decoded federation datagram: exactly one field is
// non-nil.
type Message struct {
	Digest   *Digest
	Assign   *Assignment
	PeerBeat *PeerBeat
	Mirror   *Mirror
	Ack      *Ack
}

// Decode decodes any federation datagram. Same contract as Unmarshal:
// malformed input returns ErrBadMessage, no input may panic, and
// accepted messages re-encode to the exact input bytes.
func Decode(b []byte) (Message, error) {
	r := reader{buf: b}
	m0, _ := r.u8()
	m1, _ := r.u8()
	ver, ok := r.u8()
	if !ok || m0 != wireMagic[0] || m1 != wireMagic[1] {
		return Message{}, fmt.Errorf("%w: bad magic", ErrBadMessage)
	}
	if ver != wireVersion {
		return Message{}, fmt.Errorf("%w: version %d", ErrBadMessage, ver)
	}
	kind, ok := r.u8()
	if !ok {
		return Message{}, fmt.Errorf("%w: truncated kind", ErrBadMessage)
	}
	switch kind {
	case kindDigest:
		d, err := unmarshalDigest(&r)
		if err != nil {
			return Message{}, err
		}
		return Message{Digest: d}, nil
	case kindAssign:
		a, err := unmarshalAssign(&r)
		if err != nil {
			return Message{}, err
		}
		return Message{Assign: a}, nil
	case kindPeerBeat:
		p, err := unmarshalPeerBeat(&r)
		if err != nil {
			return Message{}, err
		}
		return Message{PeerBeat: p}, nil
	case kindMirror:
		m, err := unmarshalMirror(&r)
		if err != nil {
			return Message{}, err
		}
		return Message{Mirror: m}, nil
	case kindAck:
		k, err := unmarshalAck(&r)
		if err != nil {
			return Message{}, err
		}
		return Message{Ack: k}, nil
	default:
		return Message{}, fmt.Errorf("%w: kind %d", ErrBadMessage, kind)
	}
}

// Marshal encodes the peer beat.
func (p PeerBeat) Marshal() []byte {
	checkName("aggregator id", p.Agg)
	checkName("region", p.Region)
	buf := make([]byte, 0, 4+2+len(p.Agg)+2+len(p.Region)+8+8+8+8+1+4+4+8)
	buf = append(buf, wireMagic[0], wireMagic[1], wireVersion, kindPeerBeat)
	buf = appendStr(buf, p.Agg)
	buf = appendStr(buf, p.Region)
	buf = binary.BigEndian.AppendUint64(buf, p.Inc)
	buf = binary.BigEndian.AppendUint64(buf, p.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.SentAt))
	buf = binary.BigEndian.AppendUint64(buf, p.AssignVersion)
	var flags uint8
	if p.Leader {
		flags |= beatFlagLeader
	}
	if p.Ready {
		flags |= beatFlagReady
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint32(buf, p.Leaves)
	buf = binary.BigEndian.AppendUint32(buf, p.Cohorts)
	buf = binary.BigEndian.AppendUint64(buf, p.FleetStreams)
	return buf
}

func unmarshalPeerBeat(r *reader) (*PeerBeat, error) {
	agg, ok1 := r.str()
	region, ok2 := r.str()
	inc, ok3 := r.u64()
	seq, ok4 := r.u64()
	sentAt, ok5 := r.u64()
	av, ok6 := r.u64()
	flags, ok7 := r.u8()
	leaves, ok8 := r.u32()
	cohorts, ok9 := r.u32()
	streams, ok10 := r.u64()
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || !ok6 || !ok7 || !ok8 || !ok9 || !ok10 {
		return nil, fmt.Errorf("%w: truncated peer beat", ErrBadMessage)
	}
	if agg == "" {
		return nil, fmt.Errorf("%w: empty aggregator id", ErrBadMessage)
	}
	if flags&^(beatFlagLeader|beatFlagReady) != 0 {
		return nil, fmt.Errorf("%w: peer beat flags %#x", ErrBadMessage, flags)
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(r.buf)-r.off)
	}
	return &PeerBeat{
		Agg: agg, Region: region, Inc: inc, Seq: seq,
		SentAt: clock.Time(sentAt), AssignVersion: av,
		Leader: flags&beatFlagLeader != 0, Ready: flags&beatFlagReady != 0,
		Leaves: leaves, Cohorts: cohorts, FleetStreams: streams,
	}, nil
}

// Marshal encodes one mirror chunk. Panics on bound violations — the
// aggregator chunks before encoding, same contract as Digest.Marshal.
func (m Mirror) Marshal() []byte {
	checkName("aggregator id", m.Agg)
	if len(m.Leaves) > MaxMirrorLeaves {
		panic(fmt.Sprintf("federate: %d mirror leaves exceeds %d", len(m.Leaves), MaxMirrorLeaves))
	}
	if len(m.Cohorts) > MaxMirrorCohorts {
		panic(fmt.Sprintf("federate: %d mirror cohorts exceeds %d", len(m.Cohorts), MaxMirrorCohorts))
	}
	if len(m.History) > MaxMirrorHistory {
		panic(fmt.Sprintf("federate: %d mirror history records exceeds %d", len(m.History), MaxMirrorHistory))
	}
	buf := make([]byte, 0, 512+192*len(m.Leaves)+256*len(m.Cohorts))
	buf = append(buf, wireMagic[0], wireMagic[1], wireVersion, kindMirror)
	buf = appendStr(buf, m.Agg)
	buf = binary.BigEndian.AppendUint64(buf, m.Inc)
	buf = binary.BigEndian.AppendUint64(buf, m.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.SentAt))
	buf = binary.BigEndian.AppendUint64(buf, m.AssignVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Leaves)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Cohorts)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.History)))
	for _, l := range m.Leaves {
		checkName("mirror leaf id", l.ID)
		checkName("mirror leaf addr", l.Addr)
		checkName("mirror leaf region", l.Region)
		buf = appendStr(buf, l.ID)
		buf = appendStr(buf, l.Addr)
		buf = appendStr(buf, l.Region)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(l.Weight))
		buf = binary.BigEndian.AppendUint64(buf, l.Inc)
		buf = binary.BigEndian.AppendUint64(buf, l.LastSeq)
		buf = binary.BigEndian.AppendUint64(buf, uint64(l.LastAt))
		buf = binary.BigEndian.AppendUint64(buf, l.EchoedAV)
		buf = append(buf, l.Live)
	}
	for _, c := range m.Cohorts {
		checkName("mirror cohort filter", c.Filter)
		checkName("mirror cohort owner", c.Owner)
		checkName("mirror epoch leaf", c.EpochLeaf)
		buf = appendStr(buf, c.Filter)
		buf = appendStr(buf, c.Owner)
		var flags uint8
		if c.Orphaned {
			flags |= cohortFlagOrphaned
		}
		buf = append(buf, flags)
		buf = appendStr(buf, c.EpochLeaf)
		buf = binary.BigEndian.AppendUint64(buf, c.EpochInc)
		buf = binary.BigEndian.AppendUint64(buf, c.CarriedSuspects)
		buf = binary.BigEndian.AppendUint64(buf, c.CarriedTrusts)
		buf = binary.BigEndian.AppendUint64(buf, c.CarriedOfflines)
		buf = binary.BigEndian.AppendUint64(buf, c.CarriedEvictions)
		buf = binary.BigEndian.AppendUint32(buf, c.Last.Streams)
		buf = binary.BigEndian.AppendUint32(buf, c.Last.Trusted)
		buf = binary.BigEndian.AppendUint32(buf, c.Last.Suspected)
		buf = binary.BigEndian.AppendUint32(buf, c.Last.Offline)
		buf = binary.BigEndian.AppendUint64(buf, c.Last.Suspects)
		buf = binary.BigEndian.AppendUint64(buf, c.Last.Trusts)
		buf = binary.BigEndian.AppendUint64(buf, c.Last.Offlines)
		buf = binary.BigEndian.AppendUint64(buf, c.Last.Evictions)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.Last.TDSum))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.Last.MRSum))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.Last.QAPMin))
		buf = binary.BigEndian.AppendUint32(buf, c.Last.Tuned)
		buf = binary.BigEndian.AppendUint32(buf, c.Last.Omitted)
		buf = binary.BigEndian.AppendUint64(buf, uint64(c.UpdatedAt))
	}
	for _, h := range m.History {
		checkName("mirror history dead leaf", h.Dead)
		if len(h.Moved) > MaxAssignEntries {
			panic(fmt.Sprintf("federate: %d moved entries exceeds %d", len(h.Moved), MaxAssignEntries))
		}
		buf = binary.BigEndian.AppendUint64(buf, h.Version)
		buf = binary.BigEndian.AppendUint64(buf, uint64(h.At))
		buf = appendStr(buf, h.Dead)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.Moved)))
		buf = binary.BigEndian.AppendUint32(buf, h.MovedOmitted)
		for _, e := range h.Moved {
			checkName("mirror moved cohort", e.Cohort)
			checkName("mirror moved owner", e.Owner)
			buf = appendStr(buf, e.Cohort)
			buf = appendStr(buf, e.Owner)
		}
	}
	if len(buf) > MirrorMTU {
		panic(fmt.Sprintf("federate: %d-byte mirror chunk exceeds %d", len(buf), MirrorMTU))
	}
	return buf
}

func unmarshalMirror(r *reader) (*Mirror, error) {
	if len(r.buf) > MirrorMTU {
		return nil, fmt.Errorf("%w: %d-byte mirror exceeds %d", ErrBadMessage, len(r.buf), MirrorMTU)
	}
	agg, ok1 := r.str()
	inc, ok2 := r.u64()
	seq, ok3 := r.u64()
	sentAt, ok4 := r.u64()
	av, ok5 := r.u64()
	nLeaves, ok6 := r.u16()
	nCohorts, ok7 := r.u16()
	nHist, ok8 := r.u16()
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || !ok6 || !ok7 || !ok8 {
		return nil, fmt.Errorf("%w: truncated mirror header", ErrBadMessage)
	}
	if agg == "" {
		return nil, fmt.Errorf("%w: empty aggregator id", ErrBadMessage)
	}
	if int(nLeaves) > MaxMirrorLeaves || int(nCohorts) > MaxMirrorCohorts || int(nHist) > MaxMirrorHistory {
		return nil, fmt.Errorf("%w: mirror counts %d/%d/%d", ErrBadMessage, nLeaves, nCohorts, nHist)
	}
	m := &Mirror{Agg: agg, Inc: inc, Seq: seq, SentAt: clock.Time(sentAt), AssignVersion: av}
	if nLeaves > 0 {
		m.Leaves = make([]MirrorLeaf, 0, nLeaves)
	}
	for i := 0; i < int(nLeaves); i++ {
		var l MirrorLeaf
		var okID, okAddr, okRegion bool
		l.ID, okID = r.str()
		l.Addr, okAddr = r.str()
		l.Region, okRegion = r.str()
		wbits, okW := r.u64()
		linc, okI := r.u64()
		lseq, okS := r.u64()
		lat, okA := r.u64()
		eav, okE := r.u64()
		live, okL := r.u8()
		if !okID || !okAddr || !okRegion || !okW || !okI || !okS || !okA || !okE || !okL || l.ID == "" {
			return nil, fmt.Errorf("%w: truncated mirror leaf %d", ErrBadMessage, i)
		}
		if live > uint8(leafDead) {
			return nil, fmt.Errorf("%w: mirror leaf %d liveness %d", ErrBadMessage, i, live)
		}
		l.Weight = math.Float64frombits(wbits)
		l.Inc, l.LastSeq, l.LastAt, l.EchoedAV, l.Live = linc, lseq, clock.Time(lat), eav, live
		m.Leaves = append(m.Leaves, l)
	}
	if nCohorts > 0 {
		m.Cohorts = make([]MirrorCohort, 0, nCohorts)
	}
	for i := 0; i < int(nCohorts); i++ {
		var c MirrorCohort
		var okF, okO, okE bool
		c.Filter, okF = r.str()
		c.Owner, okO = r.str()
		flags, okFl := r.u8()
		c.EpochLeaf, okE = r.str()
		epochInc, okEI := r.u64()
		if !okF || !okO || !okFl || !okE || !okEI || c.Filter == "" {
			return nil, fmt.Errorf("%w: truncated mirror cohort %d", ErrBadMessage, i)
		}
		if flags&^cohortFlagOrphaned != 0 {
			return nil, fmt.Errorf("%w: mirror cohort %d flags %#x", ErrBadMessage, i, flags)
		}
		c.Orphaned = flags&cohortFlagOrphaned != 0
		c.EpochInc = epochInc
		carried := [4]*uint64{&c.CarriedSuspects, &c.CarriedTrusts, &c.CarriedOfflines, &c.CarriedEvictions}
		for _, p := range carried {
			var ok bool
			if *p, ok = r.u64(); !ok {
				return nil, fmt.Errorf("%w: truncated mirror cohort %d carried", ErrBadMessage, i)
			}
		}
		c.Last.Filter = c.Filter
		u32s := [4]*uint32{&c.Last.Streams, &c.Last.Trusted, &c.Last.Suspected, &c.Last.Offline}
		for _, p := range u32s {
			var ok bool
			if *p, ok = r.u32(); !ok {
				return nil, fmt.Errorf("%w: truncated mirror cohort %d counts", ErrBadMessage, i)
			}
		}
		u64s := [4]*uint64{&c.Last.Suspects, &c.Last.Trusts, &c.Last.Offlines, &c.Last.Evictions}
		for _, p := range u64s {
			var ok bool
			if *p, ok = r.u64(); !ok {
				return nil, fmt.Errorf("%w: truncated mirror cohort %d transitions", ErrBadMessage, i)
			}
		}
		td, okA := r.u64()
		mr, okB := r.u64()
		qap, okC := r.u64()
		tuned, okD := r.u32()
		omitted, okOm := r.u32()
		updated, okU := r.u64()
		if !okA || !okB || !okC || !okD || !okOm || !okU {
			return nil, fmt.Errorf("%w: truncated mirror cohort %d qos", ErrBadMessage, i)
		}
		c.Last.TDSum = math.Float64frombits(td)
		c.Last.MRSum = math.Float64frombits(mr)
		c.Last.QAPMin = math.Float64frombits(qap)
		c.Last.Tuned = tuned
		c.Last.Omitted = omitted
		c.UpdatedAt = clock.Time(updated)
		m.Cohorts = append(m.Cohorts, c)
	}
	if nHist > 0 {
		m.History = make([]RedelegationRecord, 0, nHist)
	}
	for i := 0; i < int(nHist); i++ {
		var h RedelegationRecord
		version, okV := r.u64()
		at, okAt := r.u64()
		dead, okD := r.str()
		nMoved, okM := r.u16()
		movedOmitted, okMO := r.u32()
		if !okV || !okAt || !okD || !okM || !okMO || dead == "" {
			return nil, fmt.Errorf("%w: truncated mirror history %d", ErrBadMessage, i)
		}
		if int(nMoved) > MaxAssignEntries {
			return nil, fmt.Errorf("%w: mirror history %d has %d entries", ErrBadMessage, i, nMoved)
		}
		h.Version, h.At, h.Dead, h.MovedOmitted = version, clock.Time(at), dead, movedOmitted
		for j := 0; j < int(nMoved); j++ {
			cohort, okC := r.str()
			owner, okO := r.str()
			if !okC || !okO || cohort == "" || owner == "" {
				return nil, fmt.Errorf("%w: truncated mirror history %d/%d", ErrBadMessage, i, j)
			}
			h.Moved = append(h.Moved, AssignEntry{Cohort: cohort, Owner: owner})
		}
		m.History = append(m.History, h)
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(r.buf)-r.off)
	}
	return m, nil
}

// Marshal encodes the digest receipt.
func (k Ack) Marshal() []byte {
	checkName("aggregator id", k.Agg)
	buf := make([]byte, 0, 4+2+len(k.Agg)+1+8+8+8)
	buf = append(buf, wireMagic[0], wireMagic[1], wireVersion, kindAck)
	buf = appendStr(buf, k.Agg)
	var flags uint8
	if k.Leader {
		flags |= beatFlagLeader
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint64(buf, k.AssignVersion)
	buf = binary.BigEndian.AppendUint64(buf, k.EchoSeq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(k.SentAt))
	return buf
}

func unmarshalAck(r *reader) (*Ack, error) {
	agg, ok1 := r.str()
	flags, ok2 := r.u8()
	av, ok3 := r.u64()
	echo, ok4 := r.u64()
	sentAt, ok5 := r.u64()
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
		return nil, fmt.Errorf("%w: truncated ack", ErrBadMessage)
	}
	if agg == "" {
		return nil, fmt.Errorf("%w: empty aggregator id", ErrBadMessage)
	}
	if flags&^beatFlagLeader != 0 {
		return nil, fmt.Errorf("%w: ack flags %#x", ErrBadMessage, flags)
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(r.buf)-r.off)
	}
	return &Ack{
		Agg: agg, Leader: flags&beatFlagLeader != 0,
		AssignVersion: av, EchoSeq: echo, SentAt: clock.Time(sentAt),
	}, nil
}
