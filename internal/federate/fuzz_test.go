package federate

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the federation codec against hostile datagrams:
// the aggregator's UDP port is open to the world, so no byte sequence
// may panic the decoder, and anything it accepts must re-encode to the
// exact input bytes (canonical encoding — the same contract as the
// heartbeat and gossip codecs). Seeds mirror the heartbeat fuzz corpus:
// legal messages, truncations, bit flips, version skew, fused datagrams.
func FuzzUnmarshal(f *testing.F) {
	d := Digest{
		Leaf: "eu/leaf-1", Region: "eu", Inc: 2, Seq: 41, SentAt: 1 << 40, Weight: 0.875,
		AssignVersion: 3,
		Cohorts: []CohortDigest{
			{Filter: "eu/cluster-3/#", Streams: 1000, Trusted: 990, Suspected: 7, Offline: 3,
				Suspects: 12, Trusts: 5, Offlines: 3, Evictions: 1,
				TDSum: 123.5, MRSum: 0.25, QAPMin: 0.97, Tuned: 800,
				Notable: []Notable{{Peer: "eu/cluster-3/host-9/api", Type: 1, At: 999, Inc: 1}},
				Omitted: 4},
			{Filter: "eu/cluster-4/#", QAPMin: 1},
		},
	}
	db := d.Marshal()
	a := Assignment{Agg: "agg-eu", Version: 7, Entries: []AssignEntry{
		{Cohort: "eu/cluster-3/#", Owner: "eu/leaf-2"},
		{Cohort: "eu/cluster-4/#", Owner: "eu/leaf-3"},
	}}
	ab := a.Marshal()

	f.Add(db)
	f.Add(ab)
	f.Add((Digest{Leaf: "l"}).Marshal()) // minimal: heartbeat-only digest
	f.Add([]byte{})
	f.Add([]byte("FD"))
	f.Add(db[:len(db)/2]) // truncate (chaos KindTruncate default)
	f.Add(db[:len(db)-1]) // one byte short
	f.Add(ab[:3])         // magic + version, no kind
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	skew := append([]byte(nil), db...)
	skew[2] = 2 // future version
	f.Add(skew)
	flip := append([]byte(nil), db...)
	flip[10] ^= 0x80 // bit flip in the leaf name length
	f.Add(flip)
	f.Add(append(append([]byte(nil), db...), ab...)) // fused datagrams

	f.Fuzz(func(t *testing.T, b []byte) {
		dg, as, err := Unmarshal(b)
		if err != nil {
			return // rejected garbage is fine; panicking is not
		}
		if (dg == nil) == (as == nil) {
			t.Fatalf("accepted message decodes as neither/both kinds")
		}
		var out []byte
		if dg != nil {
			if dg.Leaf == "" {
				t.Fatal("accepted digest with empty leaf id")
			}
			if len(dg.Cohorts) > MaxDigestCohorts {
				t.Fatalf("accepted digest with %d cohorts", len(dg.Cohorts))
			}
			out = dg.Marshal()
		} else {
			if len(as.Entries) > MaxAssignEntries {
				t.Fatalf("accepted assignment with %d entries", len(as.Entries))
			}
			out = as.Marshal()
		}
		if !bytes.Equal(out, b) {
			t.Fatalf("accepted message is not canonical:\n in  %x\n out %x", b, out)
		}
	})
}

// FuzzDecode covers the full five-kind federation surface (digests,
// assignments, peer beats, mirrors, acks) through the unified decoder
// the HA aggregator actually uses: no input may panic, an accepted
// message decodes into exactly one arm within the wire bounds, and it
// re-encodes to the exact input bytes.
func FuzzDecode(f *testing.F) {
	pb := PeerBeat{Agg: "agg-a", Region: "eu", Inc: 2, Seq: 17, SentAt: 1 << 40,
		AssignVersion: 3, Leader: true, Ready: true, Leaves: 6, Cohorts: 24, FleetStreams: 10_000}.Marshal()
	mi := Mirror{Agg: "agg-a", Inc: 2, Seq: 18, SentAt: 1 << 40, AssignVersion: 3,
		Leaves: []MirrorLeaf{{ID: "eu/leaf-1", Addr: "eu/leaf-1", Region: "eu", Weight: 1,
			Inc: 1, LastSeq: 40, LastAt: 1<<40 - 5, EchoedAV: 3, Live: 1}},
		Cohorts: []MirrorCohort{{Filter: "eu/cluster-3/#", Owner: "eu/leaf-1", Orphaned: true,
			EpochLeaf: "eu/leaf-1", EpochInc: 1, CarriedSuspects: 4, CarriedOfflines: 2,
			Last: CohortDigest{Filter: "eu/cluster-3/#", Streams: 500, QAPMin: 0.9}, UpdatedAt: 1<<40 - 9}},
		History: []RedelegationRecord{{Version: 3, At: 1<<40 - 99, Dead: "eu/leaf-0",
			Moved: []AssignEntry{{Cohort: "eu/cluster-1/#", Owner: "eu/leaf-1"}}}}}.Marshal()
	ak := Ack{Agg: "agg-a", Leader: true, AssignVersion: 3, EchoSeq: 41, SentAt: 1 << 40}.Marshal()

	f.Add(pb)
	f.Add(mi)
	f.Add(ak)
	f.Add((Digest{Leaf: "l"}).Marshal())
	f.Add((Assignment{Agg: "a", Version: 1}).Marshal())
	f.Add(pb[:len(pb)-1])
	f.Add(mi[:len(mi)/2])
	f.Add(append(append([]byte(nil), ak...), 0)) // trailing byte
	flagFlip := append([]byte(nil), pb...)
	flagFlip[len(flagFlip)-17] ^= 0xfc // somewhere near the flags byte
	f.Add(flagFlip)
	f.Add(append(append([]byte(nil), pb...), mi...)) // fused datagrams

	f.Fuzz(func(t *testing.T, b []byte) {
		msg, err := Decode(b)
		if err != nil {
			return // rejected garbage is fine; panicking is not
		}
		arms := 0
		var out []byte
		if msg.Digest != nil {
			arms++
			if len(msg.Digest.Cohorts) > MaxDigestCohorts {
				t.Fatalf("accepted digest with %d cohorts", len(msg.Digest.Cohorts))
			}
			out = msg.Digest.Marshal()
		}
		if msg.Assign != nil {
			arms++
			if len(msg.Assign.Entries) > MaxAssignEntries {
				t.Fatalf("accepted assignment with %d entries", len(msg.Assign.Entries))
			}
			out = msg.Assign.Marshal()
		}
		if msg.PeerBeat != nil {
			arms++
			out = msg.PeerBeat.Marshal()
		}
		if msg.Mirror != nil {
			arms++
			m := msg.Mirror
			if len(m.Leaves) > MaxMirrorLeaves || len(m.Cohorts) > MaxMirrorCohorts || len(m.History) > MaxMirrorHistory {
				t.Fatalf("accepted mirror over bounds: %d/%d/%d", len(m.Leaves), len(m.Cohorts), len(m.History))
			}
			out = m.Marshal()
		}
		if msg.Ack != nil {
			arms++
			out = msg.Ack.Marshal()
		}
		if arms != 1 {
			t.Fatalf("accepted message decodes into %d arms", arms)
		}
		if !bytes.Equal(out, b) {
			t.Fatalf("accepted message is not canonical:\n in  %x\n out %x", b, out)
		}
	})
}
