package federate

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/clock"
	"repro/internal/detector"
	"repro/internal/netsim"
	"repro/internal/registry"
)

// The HA acceptance drill from the issue: the same 2 regions × 3 leaves
// × 10k streams fleet as the single-aggregator scenario, but under an
// active/standby aggregator pair. Killing the active mid-load must
// promote the standby within the election bound with the promoted
// aggregator serving a /fleet view that lost no cohort transition and
// issued no duplicate re-delegation; the restarted old active must
// rejoin as a follower, catch up by anti-entropy, and only then take
// leadership back (deterministic lowest-id failback).

// fedElectionBound is the promotion-latency budget: three election
// periods (peer beats go every round, two rounds per digest interval;
// the liveness silence bound plus one round of election lag fits well
// inside three intervals).
const fedElectionBound = 3 * fedInterval

// haAggHost is one aggregator machine on the netsim fabric. The pump
// keeps draining the node even while dead — datagrams sent to a downed
// machine are simply lost — so a restart starts with a clean inbox.
type haAggHost struct {
	id   string
	node *netsim.Node
	agg  *Aggregator
	dead bool
}

func (ah *haAggHost) pump(sim *clock.Sim) {
	sim.AfterFunc(25*clock.Millisecond, func(clock.Time) {
		ins := ah.node.Drain()
		if !ah.dead {
			for _, in := range ins {
				ah.agg.HandleDatagram(in.From, in.Payload)
			}
		}
		ah.pump(sim)
	})
}

// haLeafHost is one leaf machine; unlike the single-aggregator drill's
// fedLeaf it dispatches with the source address so acks attribute to
// the right half of the pair.
type haLeafHost struct {
	id   string
	node *netsim.Node
	reg  *registry.Registry
	leaf *Leaf
	dead bool
}

func (hl *haLeafHost) pump(sim *clock.Sim) {
	sim.AfterFunc(25*clock.Millisecond, func(clock.Time) {
		ins := hl.node.Drain()
		if !hl.dead {
			for _, in := range ins {
				hl.leaf.HandleDatagramFrom(in.From, in.Payload)
			}
		}
		hl.pump(sim)
	})
}

func haAggOptions(id, peer string, inc uint64) AggregatorOptions {
	return AggregatorOptions{
		ID:               id,
		Region:           "global",
		Peers:            []string{peer},
		Incarnation:      inc,
		DigestInterval:   fedInterval,
		LeafMaxSilence:   fedInterval + fedInterval/5, // 1.2 × interval
		LeafOfflineAfter: 2 * fedInterval / 5,         // 0.4 × interval
	}
}

func TestNetsimAggregatorFailover(t *testing.T) {
	sim := clock.NewSim(0)
	net := netsim.New(sim, netsim.LinkParams{
		DelayBase:  5 * clock.Millisecond,
		JitterMean: 1 * clock.Millisecond,
		JitterStd:  1 * clock.Millisecond,
	}, 42)

	// The aggregator pair. Lowest id ("agg-a") is the deterministic
	// steady-state active.
	nodeA := net.AddNode("agg-a", 8192)
	nodeB := net.AddNode("agg-b", 8192)
	hostA := &haAggHost{id: "agg-a", node: nodeA,
		agg: NewAggregator(nodeA, sim, haAggOptions("agg-a", "agg-b", 1))}
	hostB := &haAggHost{id: "agg-b", node: nodeB,
		agg: NewAggregator(nodeB, sim, haAggOptions("agg-b", "agg-a", 1))}
	hostA.agg.Start()
	hostB.agg.Start()
	hostA.pump(sim)
	hostB.pump(sim)

	// Leaves: 2 regions × 3, dual-homed on the pair.
	regions := []string{"eu", "us"}
	var cohorts []string
	cohortOwner := make(map[string]string)
	leafByID := make(map[string]*haLeafHost)
	var leafHosts []*haLeafHost
	for _, region := range regions {
		for i := 0; i < fedLeavesPer; i++ {
			id := fmt.Sprintf("%s/leaf-%d", region, i)
			var owned []string
			for c := 0; c < fedCohortsPerLeaf; c++ {
				f := fmt.Sprintf("%s/cl-%d-%d/#", region, i, c)
				owned = append(owned, f)
				cohorts = append(cohorts, f)
				cohortOwner[f] = id
			}
			reg := registry.New(sim,
				func(string) detector.Detector {
					return detector.NewChen(16, fedBeat, 200*clock.Millisecond)
				},
				registry.Options{
					WheelTick:    50 * clock.Millisecond,
					OfflineAfter: 300 * clock.Millisecond,
					MaxSilence:   600 * clock.Millisecond,
					EvictAfter:   -1,
				})
			reg.Start()
			node := net.AddNode(id, 4096)
			leaf, err := NewLeaf(node, sim, reg, "", LeafOptions{
				ID:       id,
				Region:   region,
				Cohorts:  owned,
				Interval: fedInterval,
				Aggs:     []string{"agg-a", "agg-b"},
			})
			if err != nil {
				t.Fatalf("NewLeaf(%s): %v", id, err)
			}
			leaf.Start()
			hl := &haLeafHost{id: id, node: node, reg: reg, leaf: leaf}
			hl.pump(sim)
			leafHosts = append(leafHosts, hl)
			leafByID[id] = hl
		}
	}

	// Streams and the heartbeat driver, as in the single-aggregator drill.
	streamsByCohort := make(map[string][]*fedStream, len(cohorts))
	for i := 0; i < fedStreams; i++ {
		f := cohorts[i%len(cohorts)]
		name := fmt.Sprintf("%s/s%05d", f[:len(f)-2], i)
		streamsByCohort[f] = append(streamsByCohort[f], &fedStream{name: name, alive: true})
	}
	var beat func()
	beat = func() {
		sim.AfterFunc(fedBeat, func(now clock.Time) {
			for _, f := range cohorts {
				hl := leafByID[cohortOwner[f]]
				if hl == nil || hl.dead {
					continue
				}
				for _, s := range streamsByCohort[f] {
					if !s.alive {
						continue
					}
					s.seq++
					hl.reg.Observe(arrival(s.name, s.seq, now))
				}
			}
			beat()
		})
	}
	beat()

	// Phase 1 — warmup. The pair settles on agg-a (lowest id) as active;
	// the standby's dual-sent fleet view matches the active's.
	sim.Advance(3 * clock.Second)
	if r := hostA.agg.Role(); r != "leader" {
		t.Fatalf("warmup: agg-a role %q, want leader", r)
	}
	if r := hostB.agg.Role(); r != "standby" {
		t.Fatalf("warmup: agg-b role %q, want standby", r)
	}
	if la, lb := hostA.agg.LeaderID(), hostB.agg.LeaderID(); la != "agg-a" || lb != "agg-a" {
		t.Fatalf("warmup: leader ids %q/%q, want agg-a/agg-a", la, lb)
	}
	for _, host := range []*haAggHost{hostA, hostB} {
		c := host.agg.Counters()
		if c.Leaves != fedRegions*fedLeavesPer || c.LiveLeaves != fedRegions*fedLeavesPer {
			t.Fatalf("warmup: %s sees %d leaves (%d live), want %d", host.id, c.Leaves, c.LiveLeaves, fedRegions*fedLeavesPer)
		}
		if c.Cohorts != len(cohorts) || c.FleetStreams != fedStreams {
			t.Fatalf("warmup: %s sees %d cohorts / %d streams, want %d / %d",
				host.id, c.Cohorts, c.FleetStreams, len(cohorts), fedStreams)
		}
	}
	for _, hl := range leafHosts {
		if c := hl.leaf.Counters(); c.AggsReachable != 2 || c.AggUnreachable != 0 {
			t.Fatalf("warmup: %s reachable=%d flips=%d, want 2/0", hl.id, c.AggsReachable, c.AggUnreachable)
		}
	}
	// Cold start may promote/demote agg-b transiently before agg-a's
	// first ready beat lands; steady-state assertions use deltas.
	basePromotions := hostB.agg.Counters().Promotions
	baseDemotions := hostB.agg.Counters().Demotions

	// Phase 2 — a leaf dies under the active. The active re-delegates
	// within the handoff bound; the standby replicates the new table
	// within a round WITHOUT issuing anything itself.
	victim1 := leafByID["eu/leaf-1"]
	victim1Cohorts := victim1.leaf.Cohorts()
	victim1.dead = true
	victim1.leaf.Stop()
	killAt := sim.Now()
	for hostA.agg.AssignVersion() == 0 {
		if sim.Now().Sub(killAt) > fedHandoffBound {
			t.Fatalf("active never re-delegated within %v", fedHandoffBound)
		}
		sim.Advance(50 * clock.Millisecond)
	}
	sim.Advance(clock.Second) // one round of mirroring
	if va, vb := hostA.agg.AssignVersion(), hostB.agg.AssignVersion(); va != 1 || vb != 1 {
		t.Fatalf("post-handoff versions: active %d standby %d, want 1/1", va, vb)
	}
	if r := hostB.agg.Counters().Redelegations; r != 0 {
		t.Fatalf("standby issued %d re-delegations while following", r)
	}
	for _, f := range victim1Cohorts {
		oa, ob := hostA.agg.OwnerOf(f), hostB.agg.OwnerOf(f)
		if oa == victim1.id || oa != ob {
			t.Fatalf("cohort %s: active owner %q, standby owner %q", f, oa, ob)
		}
		cohortOwner[f] = oa
	}
	sim.Advance(2 * clock.Second) // new owners absorb the re-routed streams
	if got := hostA.agg.Counters().FleetStreams; got != fedStreams {
		t.Fatalf("post-handoff fleet streams %d, want %d", got, fedStreams)
	}

	// Phase 3 — crash 50 streams in a re-delegated cohort. The offline
	// transitions must land in BOTH aggregators' merged totals (the
	// standby via dual-send and mirroring).
	crashCohort := victim1Cohorts[0]
	for _, s := range streamsByCohort[crashCohort][:50] {
		s.alive = false
	}
	sim.Advance(3 * clock.Second)
	for _, host := range []*haAggHost{hostA, hostB} {
		if _, _, off, _, ok := host.agg.CohortTotals(crashCohort); !ok || off != 50 {
			t.Fatalf("%s: crash cohort offline total %d (ok=%v), want 50", host.id, off, ok)
		}
	}

	// Phase 4 — kill the ACTIVE mid-load. The standby must promote
	// within the election bound, serve /fleet with zero lost transitions,
	// and issue zero duplicate re-delegations (the promotion sweep finds
	// every dead leaf's cohorts already moved).
	hostA.dead = true
	hostA.agg.Stop()
	killAt = sim.Now()
	for !hostB.agg.Leader() {
		if sim.Now().Sub(killAt) > fedElectionBound {
			t.Fatalf("standby not promoted within %v (role %q)", fedElectionBound, hostB.agg.Role())
		}
		sim.Advance(25 * clock.Millisecond)
	}
	promotion := sim.Now().Sub(killAt)
	t.Logf("standby promoted in %v (bound %v)", promotion, fedElectionBound)

	cb := hostB.agg.Counters()
	if cb.Promotions != basePromotions+1 {
		t.Fatalf("promotions = %d, want %d", cb.Promotions, basePromotions+1)
	}
	if cb.Redelegations != 0 || hostB.agg.AssignVersion() != 1 {
		t.Fatalf("promotion issued duplicates: redelegations=%d version=%d, want 0/1",
			cb.Redelegations, hostB.agg.AssignVersion())
	}
	srv := httptest.NewServer(hostB.agg.Handler())
	res, err := srv.Client().Get(srv.URL + "/fleet")
	if err != nil {
		t.Fatalf("GET /fleet on promoted standby: %v", err)
	}
	var fleet struct {
		Role     string `json:"role"`
		LeaderID string `json:"leader_id"`
		Cohorts  []struct {
			Cohort   string `json:"cohort"`
			Offlines uint64 `json:"offlines_total"`
		} `json:"cohorts"`
		Redelegations []RedelegationRecord `json:"redelegations"`
	}
	if err := json.NewDecoder(res.Body).Decode(&fleet); err != nil {
		t.Fatalf("decode /fleet: %v", err)
	}
	res.Body.Close()
	srv.Close()
	if fleet.Role != "leader" || fleet.LeaderID != "agg-b" {
		t.Fatalf("/fleet role=%q leader=%q, want leader/agg-b", fleet.Role, fleet.LeaderID)
	}
	crashTotalsServed := false
	for _, row := range fleet.Cohorts {
		if row.Cohort == crashCohort {
			crashTotalsServed = row.Offlines == 50
		}
	}
	if !crashTotalsServed {
		t.Fatal("/fleet on promoted standby lost crash-cohort transitions")
	}
	if len(fleet.Redelegations) != 1 {
		t.Fatalf("/fleet history has %d records, want the replicated 1", len(fleet.Redelegations))
	}

	// Leaves notice the dead aggregator's ack silence and flip it
	// unreachable, dropping to probe cadence.
	sim.Advance(5 * fedInterval)
	for _, hl := range leafHosts {
		if hl.dead {
			continue
		}
		c := hl.leaf.Counters()
		if c.AggsReachable != 1 || c.AggUnreachable < 1 {
			t.Fatalf("%s: reachable=%d flips=%d after active death, want 1/≥1", hl.id, c.AggsReachable, c.AggUnreachable)
		}
		if !hl.leaf.AggReachable("agg-b") || hl.leaf.AggReachable("agg-a") {
			t.Fatalf("%s: reachability inverted", hl.id)
		}
	}

	// Phase 5 — a second leaf dies under the NEW active: the promoted
	// standby owns the full re-delegation duty, and every moved cohort
	// moves exactly once.
	victim2 := leafByID["us/leaf-0"]
	victim2Cohorts := make(map[string]bool)
	for f, owner := range cohortOwner {
		if owner == victim2.id {
			victim2Cohorts[f] = true
		}
	}
	victim2.dead = true
	victim2.leaf.Stop()
	killAt = sim.Now()
	for hostB.agg.AssignVersion() != 2 {
		if sim.Now().Sub(killAt) > fedHandoffBound {
			t.Fatalf("promoted active never re-delegated within %v", fedHandoffBound)
		}
		sim.Advance(50 * clock.Millisecond)
	}
	hist := hostB.agg.History()
	if len(hist) != 2 || hist[1].Dead != victim2.id || hist[1].Version != 2 {
		t.Fatalf("history after second death = %+v", hist)
	}
	movedOnce := make(map[string]bool)
	for _, e := range hist[1].Moved {
		if movedOnce[e.Cohort] {
			t.Fatalf("cohort %s moved twice in one re-delegation", e.Cohort)
		}
		movedOnce[e.Cohort] = true
		if !victim2Cohorts[e.Cohort] {
			t.Fatalf("cohort %s moved but %s did not own it", e.Cohort, victim2.id)
		}
	}
	if len(movedOnce) != len(victim2Cohorts) {
		t.Fatalf("moved %d cohorts, want all %d of the dead leaf's", len(movedOnce), len(victim2Cohorts))
	}
	for f := range victim2Cohorts {
		cohortOwner[f] = hostB.agg.OwnerOf(f)
	}
	sim.Advance(2 * clock.Second)
	if got := hostB.agg.Counters().FleetStreams; got != fedStreams {
		t.Fatalf("after second handoff: fleet streams %d, want %d", got, fedStreams)
	}

	// Phase 6 — the old active restarts blank with a bumped incarnation.
	// It must rejoin as a FOLLOWER, catch up by anti-entropy, and only
	// then take leadership back (lowest id) — without re-issuing anything.
	hostA.agg = NewAggregator(nodeA, sim, haAggOptions("agg-a", "agg-b", 2))
	hostA.dead = false
	hostA.agg.Start()
	restartAt := sim.Now()
	sawFollower := false
	for !(hostA.agg.Leader() && !hostB.agg.Leader()) {
		if role := hostA.agg.Role(); (role == "joining" || role == "standby") && hostB.agg.Leader() {
			sawFollower = true
		}
		if sim.Now().Sub(restartAt) > 4*clock.Second {
			t.Fatalf("failback incomplete: agg-a role %q, agg-b leader %v",
				hostA.agg.Role(), hostB.agg.Leader())
		}
		sim.Advance(25 * clock.Millisecond)
	}
	failback := sim.Now().Sub(restartAt)
	t.Logf("old active rejoined and took leadership back in %v", failback)
	if !sawFollower {
		t.Fatal("restarted aggregator never passed through a follower phase")
	}
	if d := hostB.agg.Counters().Demotions; d != baseDemotions+1 {
		t.Fatalf("agg-b demotions = %d, want %d", d, baseDemotions+1)
	}

	// Catch-up is complete and issued nothing: same version, same owners,
	// same history, same totals — and the promotion sweep on failback was
	// a no-op because every dead leaf's cohorts were already moved.
	ca := hostA.agg.Counters()
	if ca.Redelegations != 0 || hostA.agg.AssignVersion() != 2 {
		t.Fatalf("failback re-issued: redelegations=%d version=%d, want 0/2",
			ca.Redelegations, hostA.agg.AssignVersion())
	}
	if ca.Leaves != fedRegions*fedLeavesPer {
		t.Fatalf("restarted active sees %d leaves, want %d", ca.Leaves, fedRegions*fedLeavesPer)
	}
	if h := hostA.agg.History(); len(h) != 2 {
		t.Fatalf("restarted active has %d history records, want 2", len(h))
	}
	for _, f := range cohorts {
		if oa, ob := hostA.agg.OwnerOf(f), hostB.agg.OwnerOf(f); oa != ob {
			t.Fatalf("cohort %s: owners diverge after failback (%q vs %q)", f, oa, ob)
		}
	}
	if _, _, off, _, ok := hostA.agg.CohortTotals(crashCohort); !ok || off != 50 {
		t.Fatalf("restarted active: crash cohort offline total %d (ok=%v), want 50 (transitions lost in catch-up)", off, ok)
	}

	// The leaves see the pair whole again once the revived aggregator
	// acks a probe (probe backoff caps at 16 intervals).
	sim.Advance(9 * clock.Second)
	for _, hl := range leafHosts {
		if hl.dead {
			continue
		}
		if c := hl.leaf.Counters(); c.AggsReachable != 2 {
			t.Fatalf("%s: aggs reachable = %d after revival, want 2", hl.id, c.AggsReachable)
		}
	}

	// And the revived active serves /fleet as leader.
	srv = httptest.NewServer(hostA.agg.Handler())
	defer srv.Close()
	res, err = srv.Client().Get(srv.URL + "/fleet")
	if err != nil {
		t.Fatalf("GET /fleet on revived active: %v", err)
	}
	defer res.Body.Close()
	var fleet2 struct {
		Role string `json:"role"`
	}
	if err := json.NewDecoder(res.Body).Decode(&fleet2); err != nil {
		t.Fatalf("decode /fleet: %v", err)
	}
	if fleet2.Role != "leader" {
		t.Fatalf("revived active /fleet role %q, want leader", fleet2.Role)
	}
}
