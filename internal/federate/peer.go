package federate

import (
	"sort"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/heartbeat"
)

// Aggregator high availability: each region runs an active/standby pair.
// The pair exchange compact state heartbeats (PeerBeat — the
// digest-as-heartbeat trick one tier up: each beat feeds the receiving
// peer's SFD liveness registry exactly like a leaf digest) and replicate
// the merged fleet view by periodic anti-entropy mirroring (mirror.go).
// Leadership is Ω via cluster.Elector over the pair's liveness registry:
// deterministic lowest-id-alive, with the elector's OnChange hook
// driving promotion and demotion. Two safeguards keep failover and
// failback clean:
//
//   - Only the leader re-delegates cohorts and pushes assignment tables;
//     a standby tracks leaf deaths but defers the re-delegation sweep to
//     its promotion, continuing from the replicated AssignVersion so it
//     never regresses or double-issues a table the old active already
//     pushed.
//   - A freshly (re)started aggregator is "joining": it defers to any
//     alive ready peer that claims leadership until it has caught up by
//     anti-entropy (or JoinGrace passes with no such peer), so a blank
//     restarted old active rejoins as standby instead of reclaiming
//     leadership with an empty fleet view — lowest-id failback happens
//     only after its mirror catch-up.

// peerState is the aggregator's record of one HA peer, learned from its
// beats (peers are configured by address; identity arrives on the wire).
type peerState struct {
	id            string
	addr          string // newest datagram source address
	region        string
	inc           uint64
	lastSeq       uint64
	lastAt        clock.Time
	assignVersion uint64
	leader        bool
	ready         bool
	leaves        uint32
	cohorts       uint32
	fleetStreams  uint64
	lastMirrorAt  clock.Time
	mirrorSeq     uint64
}

// PeerInfo is one HA peer row as served by /fleet.
type PeerInfo struct {
	ID            string     `json:"id"`
	Addr          string     `json:"addr,omitempty"`
	Region        string     `json:"region,omitempty"`
	Incarnation   uint64     `json:"incarnation"`
	LastSeq       uint64     `json:"last_seq"`
	LastBeatNs    clock.Time `json:"last_beat_ns"`
	AssignVersion uint64     `json:"assign_version"`
	Leader        bool       `json:"leader"`
	Ready         bool       `json:"ready"`
	Leaves        uint32     `json:"leaves"`
	Cohorts       uint32     `json:"cohorts"`
	FleetStreams  uint64     `json:"fleet_streams"`
	LastMirrorNs  clock.Time `json:"last_mirror_ns,omitempty"`
}

// haMode reports whether this aggregator runs as part of an HA pair.
func (a *Aggregator) haMode() bool { return len(a.opts.Peers) > 0 }

// Leader reports whether this aggregator currently holds leadership
// (always true outside HA mode — a standalone aggregator is its own
// active).
func (a *Aggregator) Leader() bool { return a.leaderFlag.Load() }

// LeaderID returns the aggregator this instance currently follows as
// leader ("" while no leader is known yet).
func (a *Aggregator) LeaderID() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.leaderID
}

// Role renders the HA role for /fleet: "standalone" outside HA mode,
// else "joining", "leader", or "standby".
func (a *Aggregator) Role() string {
	if !a.haMode() {
		return "standalone"
	}
	if a.joining.Load() {
		return "joining"
	}
	if a.leaderFlag.Load() {
		return "leader"
	}
	return "standby"
}

// Peers returns the HA peer records learned from beats, sorted by id.
func (a *Aggregator) Peers() []PeerInfo {
	a.mu.Lock()
	out := make([]PeerInfo, 0, len(a.peers))
	for _, ps := range a.peers {
		out = append(out, PeerInfo{
			ID: ps.id, Addr: ps.addr, Region: ps.region,
			Incarnation: ps.inc, LastSeq: ps.lastSeq, LastBeatNs: ps.lastAt,
			AssignVersion: ps.assignVersion, Leader: ps.leader, Ready: ps.ready,
			Leaves: ps.leaves, Cohorts: ps.cohorts, FleetStreams: ps.fleetStreams,
			LastMirrorNs: ps.lastMirrorAt,
		})
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// peerStatusSource adapts the aggregator's liveness registry (which the
// peer beats feed, digest-as-heartbeat) into the elector's suspicion
// oracle, with one refinement: a peer that is alive but not ready (still
// catching up after a restart) reports as suspected so the election
// skips it until its anti-entropy completes.
type peerStatusSource struct{ a *Aggregator }

func (s peerStatusSource) StatusOf(peer string, now clock.Time) (cluster.Status, bool) {
	s.a.mu.Lock()
	ps := s.a.peers[peer]
	ready := ps != nil && ps.ready
	s.a.mu.Unlock()
	if !ready {
		return cluster.StatusSuspected, ps != nil
	}
	return s.a.liveness.StatusOf(peer, now)
}

// rebuildElectorLocked (re)builds the elector over self plus every peer
// id learned so far. Called at construction and whenever a beat reveals
// a new peer identity. The OnChange hook is the promotion/demotion
// driver: it fires inside elector.Leader (called without a.mu held).
func (a *Aggregator) rebuildElectorLocked() {
	cands := make([]string, 0, 1+len(a.peers))
	cands = append(cands, a.opts.ID)
	for id := range a.peers {
		cands = append(cands, id)
	}
	el := cluster.NewElector(a.opts.ID, peerStatusSource{a}, cands)
	el.OnChange(func(old, new string, at clock.Time) { a.setLeader(new, at) })
	a.elector = el
}

// reconcileLeadership runs once per Round, before the lock-held
// maintenance: resolve the joining gate, then let the elector speak (its
// OnChange applies transitions; the explicit setLeader call below covers
// elector rebuilds, whose first Leader() observation is not a
// transition from this aggregator's point of view).
func (a *Aggregator) reconcileLeadership(now clock.Time) {
	if !a.haMode() {
		return
	}
	if a.joining.Load() {
		a.mu.Lock()
		incumbent := a.readyLeaderPeerLocked(now)
		graced := now.Sub(a.startedAt) >= a.opts.JoinGrace
		a.mu.Unlock()
		if incumbent != "" {
			// An alive ready peer claims leadership: follow it while
			// catching up (ingestMirror ends the joining phase).
			a.setLeader(incumbent, now)
			return
		}
		if !graced {
			return // nobody to defer to yet, nobody to lead either
		}
		// JoinGrace passed with no ready leader in earshot: this is a
		// cold start (or the whole pair is down) — become eligible.
		a.joining.Store(false)
	}
	a.mu.Lock()
	el := a.elector
	a.mu.Unlock()
	a.setLeader(el.Leader(now), now)
}

// readyLeaderPeerLocked returns the id of an alive, ready peer whose
// beats claim leadership ("" when none). Liveness here is beat recency
// against the same silence bound the registry applies.
func (a *Aggregator) readyLeaderPeerLocked(now clock.Time) string {
	for _, ps := range a.peers {
		if ps.ready && ps.leader && now.Sub(ps.lastAt) <= a.opts.LeafMaxSilence {
			return ps.id
		}
	}
	return ""
}

// setLeader applies a leadership observation: promotion sweeps the
// standby's deferred re-delegations, demotion just drops the active
// duties (the new leader's higher AssignVersion supersedes any table
// this instance pushed). Idempotent; safe to call both from the
// elector's OnChange hook and from reconcileLeadership.
func (a *Aggregator) setLeader(id string, now clock.Time) {
	a.mu.Lock()
	if a.leaderID == id {
		a.mu.Unlock()
		return
	}
	a.leaderID = id
	wasLeader := a.leaderFlag.Load()
	isLeader := id == a.opts.ID
	a.leaderFlag.Store(isLeader)
	a.leadershipChanges.Add(1)
	switch {
	case isLeader && !wasLeader:
		a.promotions.Add(1)
		a.promoteLocked(now)
	case !isLeader && wasLeader:
		a.demotions.Add(1)
	}
	a.mu.Unlock()
}

// promoteLocked is the promotion sweep: re-delegate every cohort still
// owned by a leaf this aggregator believes dead (deaths the old active
// never got to act on), then retry orphans. Cohorts the old active
// already moved arrive via mirrors owned by live leaves, so the sweep
// cannot double-issue them; the version ratchet continues from the
// replicated AssignVersion.
func (a *Aggregator) promoteLocked(now clock.Time) {
	var deads []string
	for id, ls := range a.leaves {
		if ls.live == leafDead {
			deads = append(deads, id)
		}
	}
	sort.Strings(deads)
	for _, d := range deads {
		a.redelegateLocked(d, now)
	}
	a.adoptOrphansLocked(now)
}

// ingestPeerBeat folds one peer's compact state heartbeat in and feeds
// it to the liveness registry — the same digest-as-heartbeat path leaves
// use, so peer failure detection runs on the self-tuning detector stack.
func (a *Aggregator) ingestPeerBeat(from string, pb *PeerBeat) {
	if pb.Agg == a.opts.ID {
		return // own beat looped back
	}
	now := a.clk.Now()
	a.peerBeatsReceived.Add(1)

	a.mu.Lock()
	ps := a.peers[pb.Agg]
	if ps == nil {
		ps = &peerState{id: pb.Agg}
		a.peers[pb.Agg] = ps
		a.rebuildElectorLocked()
	}
	if pb.Inc < ps.inc || (pb.Inc == ps.inc && pb.Seq <= ps.lastSeq && ps.lastSeq != 0) {
		a.mu.Unlock()
		a.peerBeatsStale.Add(1)
		return
	}
	ps.addr = from
	ps.region = pb.Region
	ps.inc = pb.Inc
	ps.lastSeq = pb.Seq
	ps.lastAt = now
	ps.assignVersion = pb.AssignVersion
	ps.leader = pb.Leader
	ps.ready = pb.Ready
	ps.leaves = pb.Leaves
	ps.cohorts = pb.Cohorts
	ps.fleetStreams = pb.FleetStreams
	a.mu.Unlock()

	a.liveness.Observe(heartbeat.Arrival{
		From: pb.Agg,
		Seq:  pb.Seq,
		Send: pb.SentAt,
		Recv: now,
		Inc:  pb.Inc,
	})
}

// buildPeerTrafficLocked assembles the round's outbound HA datagrams:
// one beat plus the mirror chunks, to every configured peer address.
func (a *Aggregator) buildPeerTrafficLocked(now clock.Time) []push {
	if !a.haMode() {
		return nil
	}
	var fleetStreams uint64
	for _, c := range a.cohorts {
		fleetStreams += uint64(c.last.Streams)
	}
	a.peerSeq++
	beat := PeerBeat{
		Agg:           a.opts.ID,
		Region:        a.opts.Region,
		Inc:           a.opts.Incarnation,
		Seq:           a.peerSeq,
		SentAt:        now,
		AssignVersion: a.assignVersion,
		Leader:        a.leaderFlag.Load(),
		Ready:         !a.joining.Load(),
		Leaves:        uint32(len(a.leaves)),
		Cohorts:       uint32(len(a.cohorts)),
		FleetStreams:  fleetStreams,
	}
	beatWire := beat.Marshal()
	chunks := a.buildMirrorChunksLocked(now)
	out := make([]push, 0, len(a.opts.Peers)*(1+len(chunks)))
	for _, addr := range a.opts.Peers {
		out = append(out, push{to: addr, payload: beatWire, sent: &a.peerBeatsSent})
		for _, c := range chunks {
			out = append(out, push{to: addr, payload: c, sent: &a.mirrorsSent})
		}
	}
	return out
}
