package cluster

import (
	"fmt"
	"strings"

	"repro/internal/clock"
)

// FormatSnapshot renders a monitor snapshot as an aligned status board —
// the human-readable "guidance" the paper's PlanetLab motivation asks
// for. Used by cmd/sfdmon and the examples.
func FormatSnapshot(reports []Report) string {
	if len(reports) == 0 {
		return "(no peers)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-10s %-10s %-10s %s\n", "peer", "status", "level", "lastSeq", "detector")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-28s %-10s %-10.3f %-10d %s\n",
			r.Peer, r.Status, r.SuspicionLevel, r.LastSeq, r.Detector)
	}
	return b.String()
}

// Summarize counts a snapshot by status and lists the peers needing
// attention (suspected or offline).
func Summarize(reports []Report) (counts map[Status]int, attention []string) {
	counts = make(map[Status]int)
	for _, r := range reports {
		counts[r.Status]++
		if r.Status >= StatusSuspected {
			attention = append(attention, r.Peer)
		}
	}
	return counts, attention
}

// FormatSummary renders Summarize's output in one line plus the
// attention list, e.g. "active=182 offline=18 | investigate: node-042 …".
func FormatSummary(reports []Report, now clock.Time) string {
	counts, attention := Summarize(reports)
	var parts []string
	for _, st := range []Status{StatusActive, StatusBusy, StatusSuspected, StatusOffline, StatusUnknown} {
		if counts[st] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", st, counts[st]))
		}
	}
	line := strings.Join(parts, " ")
	if len(attention) > 0 {
		line += " | investigate: " + strings.Join(attention, " ")
	}
	return line
}
