package cluster

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
)

func TestReactorFiresInThresholdOrder(t *testing.T) {
	r := NewReactor()
	var log []string
	mk := func(name string) ActionFunc {
		return func(peer string, level float64, at clock.Time) { log = append(log, name) }
	}
	// Registered out of order on purpose.
	r.On(2.0, "failover", mk("failover"))
	r.On(0.5, "warn", mk("warn"))
	r.On(1.0, "drain", mk("drain"))

	// Level climbs gradually: each threshold fires exactly once.
	for _, lvl := range []float64{0.1, 0.6, 0.7, 1.2, 1.2, 3.0, 5.0} {
		r.Evaluate("p", lvl, 0)
	}
	want := []string{"warn", "drain", "failover"}
	if len(log) != 3 {
		t.Fatalf("fired %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("fired %v, want %v", log, want)
		}
	}
}

func TestReactorSkipsStraightToHighLevel(t *testing.T) {
	r := NewReactor()
	var log []string
	r.On(0.5, "warn", func(string, float64, clock.Time) { log = append(log, "warn") })
	r.On(2.0, "failover", func(string, float64, clock.Time) { log = append(log, "failover") })
	// A single jump past both thresholds fires both, low first.
	fired := r.Evaluate("p", 10, 0)
	if len(fired) != 2 || fired[0] != "warn" || fired[1] != "failover" {
		t.Fatalf("fired = %v", fired)
	}
	if len(log) != 2 {
		t.Fatalf("callbacks = %v", log)
	}
}

func TestReactorRearmsAfterRecovery(t *testing.T) {
	r := NewReactor()
	count := 0
	r.On(1.0, "alarm", func(string, float64, clock.Time) { count++ })
	r.Evaluate("p", 2, 0) // fires
	r.Evaluate("p", 3, 0) // same episode: no refire
	if count != 1 {
		t.Fatalf("count = %d after same-episode evaluations", count)
	}
	r.Evaluate("p", 0.2, 0) // recovery below the lowest threshold
	r.Evaluate("p", 2, 0)   // new episode fires again
	if count != 2 {
		t.Fatalf("count = %d after rearm", count)
	}
}

func TestReactorPerPeerEpisodes(t *testing.T) {
	r := NewReactor()
	fired := map[string]int{}
	r.On(1.0, "alarm", func(peer string, _ float64, _ clock.Time) { fired[peer]++ })
	r.Evaluate("a", 2, 0)
	r.Evaluate("b", 2, 0)
	r.Evaluate("a", 2, 0)
	if fired["a"] != 1 || fired["b"] != 1 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestReactorEmptyAndReset(t *testing.T) {
	r := NewReactor()
	if got := r.Evaluate("p", 99, 0); got != nil {
		t.Fatalf("empty reactor fired %v", got)
	}
	count := 0
	r.On(1, "x", func(string, float64, clock.Time) { count++ })
	r.Evaluate("p", 2, 0)
	r.Reset()
	r.Evaluate("p", 2, 0)
	if count != 2 {
		t.Fatalf("Reset did not rearm: count=%d", count)
	}
}

func TestReactorWithSFDAccrual(t *testing.T) {
	det := core.New(core.Config{WindowSize: 20, Interval: 100 * msK, InitialMargin: 100 * msK})
	var last clock.Time
	for i := 0; i < 40; i++ {
		send := clock.Time(i) * clock.Time(100*msK)
		last = send.Add(2 * msK)
		det.Observe(uint64(i), send, last)
	}
	r := NewReactor()
	var seq []string
	r.On(0.5, "precaution", func(string, float64, clock.Time) { seq = append(seq, "precaution") })
	r.On(1.0, "suspect", func(string, float64, clock.Time) { seq = append(seq, "suspect") })
	r.On(3.0, "evict", func(string, float64, clock.Time) { seq = append(seq, "evict") })

	// Sample as silence stretches: actions escalate in order.
	for dt := clock.Duration(0); dt <= 600*msK; dt += 20 * msK {
		r.EvaluateDetector("p", det, last.Add(100*msK).Add(dt))
	}
	want := []string{"precaution", "suspect", "evict"}
	if len(seq) != 3 {
		t.Fatalf("escalation = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("escalation = %v, want %v", seq, want)
		}
	}
}
