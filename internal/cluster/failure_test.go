package cluster

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/heartbeat"
	"repro/internal/netsim"
)

// Failure-injection scenarios across the monitoring stack: partitions,
// partition flapping, long outages with recovery, clock discontinuities,
// and inbox saturation. These are the "dynamic and unexpected" cloud
// conditions the paper's introduction motivates.

func TestPartitionCausesSuspicionHealRestores(t *testing.T) {
	sc := NewSimCluster(netsim.LinkParams{DelayBase: 2 * msK}, 21)
	mon := sc.AddMonitor("q", chenFactory(150*msK), Options{})
	sc.AddSender("p", 100*msK, msK, "q")
	mon.Mon.Watch("p")
	sc.RunFor(10*clock.Second, 10*msK)
	if st, _ := mon.Mon.StatusOf("p", sc.Clk.Now()); st != StatusActive {
		t.Fatalf("pre-partition status %v", st)
	}

	sc.Net.Partition("p", "q")
	sc.RunFor(2*clock.Second, 10*msK)
	if st, _ := mon.Mon.StatusOf("p", sc.Clk.Now()); st < StatusSuspected {
		t.Fatalf("status during partition %v, want suspected", st)
	}

	sc.Net.Heal("p", "q")
	// After healing, heartbeats resume; once the window re-learns the
	// schedule the server must be trusted again.
	sc.RunFor(30*clock.Second, 10*msK)
	if st, _ := mon.Mon.StatusOf("p", sc.Clk.Now()); st != StatusActive {
		t.Fatalf("status after heal %v, want active", st)
	}
}

func TestPartitionFlappingNeverWedgesMonitor(t *testing.T) {
	sc := NewSimCluster(netsim.LinkParams{DelayBase: 2 * msK}, 22)
	mon := sc.AddMonitor("q", chenFactory(150*msK), Options{})
	sc.AddSender("p", 100*msK, msK, "q")
	mon.Mon.Watch("p")
	sc.RunFor(8*clock.Second, 10*msK)

	// 10 cycles of 1s cut / 2s heal.
	for i := 0; i < 10; i++ {
		sc.Net.Partition("p", "q")
		sc.RunFor(clock.Second, 10*msK)
		sc.Net.Heal("p", "q")
		sc.RunFor(2*clock.Second, 10*msK)
	}
	// Long calm period: the monitor must converge back to active, not
	// wedge in suspected (state machine correctness under flapping).
	sc.RunFor(60*clock.Second, 10*msK)
	if st, _ := mon.Mon.StatusOf("p", sc.Clk.Now()); st != StatusActive {
		t.Fatalf("status after flapping settled: %v, want active", st)
	}
}

func TestLongOutageThenRecoveryWithSFD(t *testing.T) {
	factory := func(string) detector.Detector {
		return core.New(core.Config{WindowSize: 50, Interval: 100 * msK, InitialMargin: 200 * msK})
	}
	sc := NewSimCluster(netsim.LinkParams{DelayBase: 2 * msK}, 23)
	mon := sc.AddMonitor("q", factory, Options{OfflineAfter: 5 * clock.Second})
	sc.AddSender("p", 100*msK, msK, "q")
	mon.Mon.Watch("p")
	sc.RunFor(10*clock.Second, 10*msK)

	// 30-second outage: suspected, then declared offline.
	sc.Net.Partition("p", "q")
	sc.RunFor(30*clock.Second, 10*msK)
	if st, _ := mon.Mon.StatusOf("p", sc.Clk.Now()); st != StatusOffline {
		t.Fatalf("status after long outage %v, want offline", st)
	}

	// The link heals: the paper's crash-stop model says crashed processes
	// don't recover, but a *wrongly declared* server that resumes
	// heartbeats must be reinstated.
	sc.Net.Heal("p", "q")
	sc.RunFor(60*clock.Second, 10*msK)
	if st, _ := mon.Mon.StatusOf("p", sc.Clk.Now()); st != StatusActive {
		t.Fatalf("status after outage recovery %v, want active", st)
	}
}

func TestClockJumpBehavesLikePause(t *testing.T) {
	// A coarse clock discontinuity (VM pause): all in-flight deliveries
	// land at the jump target. The monitor must suspect during the frozen
	// span and recover afterward.
	sc := NewSimCluster(netsim.LinkParams{DelayBase: 2 * msK}, 24)
	mon := sc.AddMonitor("q", chenFactory(150*msK), Options{})
	sc.AddSender("p", 100*msK, msK, "q")
	mon.Mon.Watch("p")
	sc.RunFor(10*clock.Second, 10*msK)

	sc.Clk.Jump(5 * clock.Second) // everything pending lands "now"
	// Immediately after the jump, arrivals that were in flight are all
	// stamped at the landing instant; feed them and let the system run.
	sc.RunFor(30*clock.Second, 10*msK)
	if st, _ := mon.Mon.StatusOf("p", sc.Clk.Now()); st != StatusActive {
		t.Fatalf("status after clock jump %v, want active", st)
	}
}

func TestInboxSaturationDegradesGracefully(t *testing.T) {
	// A monitor with a tiny inbox drops most heartbeats (socket-buffer
	// saturation); the detector sees the survivors as a lossy stream and
	// keeps functioning rather than corrupting state.
	clk := clock.NewSim(0)
	net := netsim.New(clk, netsim.LinkParams{DelayBase: msK}, 25)
	m := &SimMonitor{name: "q", node: net.AddNode("q", 2),
		Mon: NewMonitor(clk, chenFactory(300*msK), Options{})}
	m.Mon.Watch("p")
	sender := net.AddNode("p", 4)

	// Blast 50 heartbeats per pump window; only ~2 survive each round.
	seq := uint64(0)
	var send clock.Time
	for round := 0; round < 200; round++ {
		for i := 0; i < 50; i++ {
			msg := encodeHB(seq, send)
			_ = sender.Send("q", msg)
			seq++
			send = send.Add(2 * msK)
		}
		clk.Advance(100 * msK)
		m.pump()
	}
	snap := m.Mon.Snapshot(clk.Now())
	if len(snap) != 1 || snap[0].LastSeq == 0 {
		t.Fatalf("monitor made no progress under saturation: %+v", snap)
	}
}

func TestSFDReactsToNetworkDegradation(t *testing.T) {
	// The paper (§IV-A): "If systems have great changes and the
	// responding output QoS does not satisfy the Q̄oS, then the SFD will
	// give feedback information to improve output QoS gradually again".
	// Here the link's jitter multiplies mid-run; a previously stable SFD
	// must leave the stable state and grow its margin.
	factory := func(string) detector.Detector {
		return core.New(core.Config{
			WindowSize: 100, Interval: 100 * msK, InitialMargin: 30 * msK,
			Alpha: 100 * msK, Beta: 0.5, SlotHeartbeats: 100,
			Targets: core.Targets{MaxTD: 2 * clock.Second, MaxMR: 0.05, MinQAP: 0.999},
		})
	}
	sc := NewSimCluster(netsim.LinkParams{DelayBase: 2 * msK, JitterMean: msK, JitterStd: msK}, 26)
	mon := sc.AddMonitor("q", factory, Options{})
	sc.AddSender("p", 100*msK, msK, "q")
	mon.Mon.Watch("p")
	sc.RunFor(60*clock.Second, 10*msK)

	var det *core.SFD
	mon.Mon.mu.Lock()
	det = mon.Mon.peers["p"].det.(*core.SFD)
	mon.Mon.mu.Unlock()
	calmMargin := det.Margin()

	// Degrade the network violently.
	sc.Net.SetLink("p", "q", netsim.LinkParams{
		DelayBase: 2 * msK, JitterMean: 60 * msK, JitterStd: 80 * msK,
	})
	sc.RunFor(240*clock.Second, 10*msK)
	if det.Margin() <= calmMargin {
		t.Fatalf("margin did not grow after degradation: calm=%v now=%v (state %v)",
			calmMargin, det.Margin(), det.State())
	}
}

// encodeHB builds a heartbeat datagram.
func encodeHB(seq uint64, send clock.Time) []byte {
	return heartbeat.Message{Kind: heartbeat.KindHeartbeat, Seq: seq, Time: send}.Marshal()
}
