package cluster

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/heartbeat"
	"repro/internal/netsim"
)

const msK = clock.Millisecond

func chenFactory(alpha clock.Duration) Factory {
	return func(string) detector.Detector {
		return detector.NewChen(50, 100*msK, alpha)
	}
}

// feedMonitor delivers n regular heartbeats from peer.
func feedMonitor(m *Monitor, peer string, n int, iv clock.Duration) clock.Time {
	var last clock.Time
	for i := 0; i < n; i++ {
		send := clock.Time(i) * clock.Time(iv)
		recv := send.Add(2 * msK)
		m.Observe(heartbeat.Arrival{From: peer, Seq: uint64(i), Send: send, Recv: recv})
		last = recv
	}
	return last
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{StatusUnknown, StatusActive, StatusBusy, StatusSuspected, StatusOffline, Status(42)} {
		if s.String() == "" {
			t.Fatal("empty status string")
		}
	}
}

func TestMonitorLifecycle(t *testing.T) {
	m := NewMonitor(clock.NewSim(0), chenFactory(50*msK), Options{})
	m.Watch("p1")
	m.Watch("p1") // idempotent
	m.Watch("p2")
	peers := m.Peers()
	if len(peers) != 2 || peers[0] != "p1" || peers[1] != "p2" {
		t.Fatalf("Peers = %v", peers)
	}
	if st, ok := m.StatusOf("p1", 0); !ok || st != StatusUnknown {
		t.Fatalf("fresh peer status = %v,%v", st, ok)
	}
	if _, ok := m.StatusOf("ghost", 0); ok {
		t.Fatal("unknown peer reported ok")
	}
	m.Unwatch("p2")
	if len(m.Peers()) != 1 {
		t.Fatal("Unwatch failed")
	}
}

func TestMonitorActiveWhileHeartbeating(t *testing.T) {
	m := NewMonitor(clock.NewSim(0), chenFactory(100*msK), Options{})
	last := feedMonitor(m, "srv", 60, 100*msK)
	st, ok := m.StatusOf("srv", last.Add(10*msK))
	if !ok || st != StatusActive {
		t.Fatalf("status = %v, want active", st)
	}
}

func TestMonitorSuspectsAfterSilence(t *testing.T) {
	m := NewMonitor(clock.NewSim(0), chenFactory(100*msK), Options{OfflineAfter: 5 * clock.Second})
	last := feedMonitor(m, "srv", 60, 100*msK)
	// Soon after the freshness point the server is suspected...
	st, _ := m.StatusOf("srv", last.Add(400*msK))
	if st != StatusSuspected {
		t.Fatalf("status after silence = %v, want suspected", st)
	}
	// ...and after the offline grace period it is declared offline.
	st, _ = m.StatusOf("srv", last.Add(6*clock.Second))
	if st != StatusOffline {
		t.Fatalf("status after grace = %v, want offline", st)
	}
}

func TestMonitorEvictOffline(t *testing.T) {
	m := NewMonitor(clock.NewSim(0), chenFactory(100*msK), Options{OfflineAfter: 5 * clock.Second})
	lastDead := feedMonitor(m, "dead", 60, 100*msK)
	feedMonitor(m, "alive", 60, 100*msK)

	// "dead" goes silent; "alive" keeps beating through the silence.
	deadline := lastDead.Add(8 * clock.Second)
	for i := 60; clock.Time(i)*clock.Time(100*msK) < deadline; i++ {
		send := clock.Time(i) * clock.Time(100*msK)
		m.Observe(heartbeat.Arrival{From: "alive", Seq: uint64(i), Send: send, Recv: send.Add(2 * msK)})
	}

	// Offline but within the eviction grace: nothing is removed.
	at := lastDead.Add(6 * clock.Second)
	if st, _ := m.StatusOf("dead", at); st != StatusOffline {
		t.Fatalf("status = %v, want offline", st)
	}
	if ev := m.EvictOffline(at, 3*clock.Second); len(ev) != 0 {
		t.Fatalf("evicted %v before grace elapsed", ev)
	}

	// Past OfflineAfter+grace: only the offline peer goes.
	at = lastDead.Add(9 * clock.Second)
	ev := m.EvictOffline(at, 3*clock.Second)
	if len(ev) != 1 || ev[0] != "dead" {
		t.Fatalf("evicted %v, want [dead]", ev)
	}
	if peers := m.Peers(); len(peers) != 1 || peers[0] != "alive" {
		t.Fatalf("remaining peers %v, want [alive]", peers)
	}
	// Idempotent once the table is clean.
	if ev := m.EvictOffline(at, 0); len(ev) != 0 {
		t.Fatalf("second eviction removed %v", ev)
	}
}

func TestMonitorBusyBandWithAccrual(t *testing.T) {
	// SFD's accrual level consumes the margin gradually: between BusyLevel
	// and SuspectLevel the server reports busy.
	factory := func(string) detector.Detector {
		return core.New(core.Config{WindowSize: 20, Interval: 100 * msK, InitialMargin: 200 * msK})
	}
	m := NewMonitor(clock.NewSim(0), factory, Options{BusyLevel: 0.5, SuspectLevel: 1.0})
	var last clock.Time
	for i := 0; i < 40; i++ {
		send := clock.Time(i) * clock.Time(100*msK)
		recv := send.Add(2 * msK)
		m.Observe(heartbeat.Arrival{From: "srv", Seq: uint64(i), Send: send, Recv: recv})
		last = recv
	}
	// At last + interval + 60% of margin: suspicion ≈ 0.6 → busy.
	busyAt := last.Add(100 * msK).Add(120 * msK)
	st, lvl := StatusUnknown, 0.0
	if got, ok := m.StatusOf("srv", busyAt); ok {
		st = got
	}
	snap := m.Snapshot(busyAt)
	for _, r := range snap {
		if r.Peer == "srv" {
			lvl = r.SuspicionLevel
		}
	}
	if st != StatusBusy {
		t.Fatalf("status = %v (level %v), want busy", st, lvl)
	}
}

func TestMonitorRecoversFromWrongSuspicion(t *testing.T) {
	m := NewMonitor(clock.NewSim(0), chenFactory(50*msK), Options{})
	last := feedMonitor(m, "srv", 60, 100*msK)
	if st, _ := m.StatusOf("srv", last.Add(500*msK)); st != StatusSuspected {
		t.Fatal("not suspected during gap")
	}
	// Heartbeats resume (shifted 500 ms by the outage): once the sliding
	// window refills with the new schedule, trust must be restored —
	// Chen's estimator tracks the shift only as old samples age out.
	var lastRecv clock.Time
	for k := 0; k < 60; k++ {
		seq := uint64(60 + k)
		send := last.Add(498*msK + clock.Duration(k)*100*msK)
		lastRecv = last.Add(500*msK + clock.Duration(k)*100*msK)
		m.Observe(heartbeat.Arrival{From: "srv", Seq: seq, Send: send, Recv: lastRecv})
	}
	if st, _ := m.StatusOf("srv", lastRecv.Add(10*msK)); st != StatusActive {
		t.Fatalf("status after recovery = %v, want active", st)
	}
}

func TestMonitorMaxSilenceSafetyNet(t *testing.T) {
	// A process that crashes right after its very first heartbeat never
	// gives an interval-estimating detector enough history to form a
	// freshness point; the MaxSilence net must still flag it.
	estFactory := func(string) detector.Detector {
		return detector.NewChen(50, 0, 50*msK) // interval estimated: needs ≥2 arrivals
	}
	m := NewMonitor(clock.NewSim(0), estFactory, Options{MaxSilence: clock.Second})
	m.Observe(heartbeat.Arrival{From: "flash", Seq: 0, Send: 0, Recv: clock.Time(msK)})
	if st, _ := m.StatusOf("flash", clock.Time(500*msK)); st != StatusActive {
		t.Fatalf("status before MaxSilence = %v, want active", st)
	}
	if st, _ := m.StatusOf("flash", clock.Time(2*clock.Second)); st < StatusSuspected {
		t.Fatalf("status after MaxSilence = %v, want suspected", st)
	}
	// Without the net, the same peer stays active forever.
	m2 := NewMonitor(clock.NewSim(0), estFactory, Options{})
	m2.Observe(heartbeat.Arrival{From: "flash", Seq: 0, Send: 0, Recv: clock.Time(msK)})
	if st, _ := m2.StatusOf("flash", clock.Time(3600*clock.Second)); st != StatusActive {
		t.Fatalf("disabled net changed semantics: %v", st)
	}
}

func TestMonitorAutoRegistersNewPeer(t *testing.T) {
	m := NewMonitor(clock.NewSim(0), chenFactory(50*msK), Options{})
	m.Observe(heartbeat.Arrival{From: "newcomer", Seq: 0, Send: 0, Recv: clock.Time(msK)})
	if len(m.Peers()) != 1 {
		t.Fatal("auto-registration failed")
	}
}

func TestMonitorStaleArrivalIgnored(t *testing.T) {
	m := NewMonitor(clock.NewSim(0), chenFactory(50*msK), Options{})
	feedMonitor(m, "srv", 10, 100*msK)
	snapBefore := m.Snapshot(clock.Time(clock.Second))
	m.Observe(heartbeat.Arrival{From: "srv", Seq: 3, Send: 0, Recv: clock.Time(2 * clock.Second)})
	snapAfter := m.Snapshot(clock.Time(clock.Second))
	if snapBefore[0].LastSeq != snapAfter[0].LastSeq {
		t.Fatal("stale arrival mutated state")
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	m := NewMonitor(clock.NewSim(0), chenFactory(50*msK), Options{})
	for _, p := range []string{"zeta", "alpha", "mid"} {
		m.Watch(p)
	}
	snap := m.Snapshot(0)
	if len(snap) != 3 || snap[0].Peer != "alpha" || snap[2].Peer != "zeta" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	for _, r := range snap {
		if r.Status != StatusUnknown || r.Detector == "" {
			t.Fatalf("fresh peer report wrong: %+v", r)
		}
	}
}

func TestQuorumMasksSingleMonitorMistake(t *testing.T) {
	clk := clock.NewSim(0)
	mk := func() *Monitor { return NewMonitor(clk, chenFactory(50*msK), Options{}) }
	m1, m2, m3 := mk(), mk(), mk()
	// All three watch srv; m1 misses the last heartbeats (its own path
	// lost them), so it alone suspects.
	last := feedMonitor(m2, "srv", 60, 100*msK)
	feedMonitor(m3, "srv", 60, 100*msK)
	feedMonitor(m1, "srv", 55, 100*msK)
	q := Quorum{Monitors: []*Monitor{m1, m2, m3}}
	now := last.Add(50 * msK)
	sus, votes := q.Suspected("srv", now)
	if sus {
		t.Fatalf("quorum suspected with %d vote(s)", votes)
	}
	if votes != 1 {
		t.Fatalf("votes = %d, want 1 (only the lossy monitor)", votes)
	}
	// Explicit Need=1 turns it into an any-of alarm.
	q.Need = 1
	if sus, _ := q.Suspected("srv", now); !sus {
		t.Fatal("Need=1 quorum did not suspect")
	}
}

func TestSimClusterCrashDetection(t *testing.T) {
	sc := NewSimCluster(netsim.LinkParams{DelayBase: 5 * msK, JitterMean: msK, JitterStd: msK}, 1)
	mon := sc.AddMonitor("q", chenFactory(100*msK), Options{})
	srv := sc.AddSender("p", 100*msK, 2*msK, "q")
	mon.Mon.Watch("p")

	sc.RunFor(20*clock.Second, 10*msK)
	if st, _ := mon.Mon.StatusOf("p", sc.Clk.Now()); st != StatusActive {
		t.Fatalf("server not active while alive: %v", st)
	}
	srv.Crash()
	lat, ok := sc.DetectCrash("q", "p", 10*clock.Second)
	if !ok {
		t.Fatal("crash never detected")
	}
	// Detection should land near Δt + margin (+ link delay): well under 1s.
	if lat > clock.Second {
		t.Fatalf("detection latency %v too large", lat)
	}
	if p50, p99, ok := mon.Mon.DetectionLatency(); !ok || p50 <= 0 || p99 < p50 {
		t.Fatalf("latency quantiles wrong: %v/%v/%v", p50, p99, ok)
	}
}

func TestSimClusterOneMonitorsMultiple(t *testing.T) {
	sc := NewSimCluster(netsim.LinkParams{DelayBase: 2 * msK}, 2)
	mon := sc.AddMonitor("q", chenFactory(150*msK), Options{})
	const n = 10
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("p%d", i)
		sc.AddSender(name, 100*msK, 2*msK, "q")
		mon.Mon.Watch(name)
	}
	sc.RunFor(15*clock.Second, 10*msK)
	snap := mon.Mon.Snapshot(sc.Clk.Now())
	if len(snap) != n {
		t.Fatalf("snapshot has %d peers, want %d", len(snap), n)
	}
	for _, r := range snap {
		if r.Status != StatusActive {
			t.Fatalf("%s: status %v, want active", r.Peer, r.Status)
		}
	}
	// Crash three of them; all three must be detected, others unaffected.
	for i := 0; i < 3; i++ {
		sc.Sender(fmt.Sprintf("p%d", i)).Crash()
	}
	sc.RunFor(2*clock.Second, 10*msK)
	now := sc.Clk.Now()
	for i := 0; i < n; i++ {
		st, _ := mon.Mon.StatusOf(fmt.Sprintf("p%d", i), now)
		if i < 3 && st < StatusSuspected {
			t.Fatalf("crashed p%d not suspected: %v", i, st)
		}
		if i >= 3 && st != StatusActive {
			t.Fatalf("alive p%d wrongly %v", i, st)
		}
	}
}

func TestSimClusterBusyServer(t *testing.T) {
	factory := func(string) detector.Detector {
		return core.New(core.Config{WindowSize: 30, Interval: 100 * msK, InitialMargin: 300 * msK})
	}
	sc := NewSimCluster(netsim.LinkParams{DelayBase: 2 * msK}, 3)
	mon := sc.AddMonitor("q", factory, Options{BusyLevel: 0.3, SuspectLevel: 1.0})
	srv := sc.AddSender("p", 100*msK, msK, "q")
	mon.Mon.Watch("p")
	sc.RunFor(10*clock.Second, 10*msK)

	// Make the server sluggish: +150 ms per beat stretches arrivals into
	// the busy band without crossing the 300 ms margin.
	srv.SetBusy(150 * msK)
	sawBusy := false
	for i := 0; i < 400; i++ {
		sc.RunFor(50*msK, 10*msK)
		if st, _ := mon.Mon.StatusOf("p", sc.Clk.Now()); st == StatusBusy {
			sawBusy = true
			break
		}
	}
	if !sawBusy {
		t.Fatal("sluggish server never classified busy")
	}
}

func TestConsortiumScenario(t *testing.T) {
	con := BuildConsortium(ConsortiumConfig{
		ServersPerCloud: 2,
		Interval:        100 * msK,
		Jitter:          2 * msK,
		Factory:         chenFactory(250 * msK),
		Seed:            7,
	})
	if len(con.Clouds) != 5 {
		t.Fatalf("clouds = %d, want 5", len(con.Clouds))
	}
	con.RunFor(20*clock.Second, 10*msK)

	// Every manager sees its own servers active.
	now := con.Clk.Now()
	for name, cl := range con.Clouds {
		for _, srv := range cl.Servers {
			st, ok := cl.Manager.Mon.StatusOf(srv.name, now)
			if !ok || st != StatusActive {
				t.Fatalf("%s: server %s status %v", name, srv.name, st)
			}
		}
	}
	// Every manager sees every other cloud's beacon active.
	for name, cl := range con.Clouds {
		for other := range con.Clouds {
			if other == name {
				continue
			}
			st, ok := cl.Manager.Mon.StatusOf(other+"/beacon", now)
			if !ok || st != StatusActive {
				t.Fatalf("%s: beacon of %s status %v (ok=%v)", name, other, st, ok)
			}
		}
	}

	// Crash GA's beacon: the cross-cloud quorum must agree.
	con.Sender("GA/beacon").Crash()
	con.RunFor(3*clock.Second, 10*msK)
	q := con.CrossCloudQuorum("GA")
	sus, votes := q.Suspected("GA/beacon", con.Clk.Now())
	if !sus {
		t.Fatalf("consortium did not reach quorum on crashed beacon (votes=%d)", votes)
	}
}

func TestDetectCrashEdgeCases(t *testing.T) {
	sc := NewSimCluster(netsim.LinkParams{DelayBase: msK}, 4)
	sc.AddMonitor("q", chenFactory(100*msK), Options{})
	sc.AddSender("p", 100*msK, 0, "q")
	// Unknown names.
	if _, ok := sc.DetectCrash("ghost", "p", clock.Second); ok {
		t.Fatal("unknown monitor accepted")
	}
	if _, ok := sc.DetectCrash("q", "ghost", clock.Second); ok {
		t.Fatal("unknown peer accepted")
	}
	// Peer not crashed.
	if _, ok := sc.DetectCrash("q", "p", clock.Second); ok {
		t.Fatal("DetectCrash on live peer succeeded")
	}
}

func TestScoreboardFormatting(t *testing.T) {
	if FormatSnapshot(nil) != "(no peers)\n" {
		t.Fatal("empty snapshot format wrong")
	}
	reports := []Report{
		{Peer: "a", Status: StatusActive, Detector: "SFD"},
		{Peer: "b", Status: StatusSuspected, SuspicionLevel: 3.2, Detector: "SFD"},
		{Peer: "c", Status: StatusOffline, SuspicionLevel: 42, Detector: "SFD"},
	}
	board := FormatSnapshot(reports)
	for _, want := range []string{"a", "b", "c", "suspected", "offline", "detector"} {
		if !strings.Contains(board, want) {
			t.Fatalf("board missing %q:\n%s", want, board)
		}
	}
	counts, attention := Summarize(reports)
	if counts[StatusActive] != 1 || counts[StatusSuspected] != 1 || counts[StatusOffline] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if len(attention) != 2 || attention[0] != "b" || attention[1] != "c" {
		t.Fatalf("attention = %v", attention)
	}
	sum := FormatSummary(reports, 0)
	if !strings.Contains(sum, "active=1") || !strings.Contains(sum, "investigate: b c") {
		t.Fatalf("summary = %q", sum)
	}
}
