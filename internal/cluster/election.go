package cluster

import (
	"sort"
	"sync"

	"repro/internal/clock"
)

// StatusSource is the suspicion oracle an Elector consults: anything
// that can classify a peer at an instant. *Monitor satisfies it, and so
// does the registry's StatusOf — the federation tier elects its active
// aggregator straight off the liveness registry its peers heartbeat
// into (digest-as-heartbeat, no second detector stack).
type StatusSource interface {
	StatusOf(peer string, now clock.Time) (Status, bool)
}

// Elector implements Ω — eventual leader election — by the classic
// reduction from an eventually-perfect failure detector: the leader is
// the smallest-ranked candidate the local monitor does not currently
// suspect. Since SFD is eventually perfect on a stabilized network
// (◇P_ac, §IV-B of the paper), every correct process eventually elects
// the same correct leader; wrong suspicions can only cause transient
// flapping, which the elector counts for observability.
type Elector struct {
	self       string
	mon        StatusSource
	candidates []string // sorted ranking, includes self

	mu          sync.Mutex
	lastLeader  string
	changes     int
	subscribers []func(old, new string, at clock.Time)
}

// NewElector builds an elector for the given candidate set. self is this
// process's own name (never suspected locally); mon must watch every
// other candidate. Candidate ranking is lexicographic.
func NewElector(self string, mon StatusSource, candidates []string) *Elector {
	cs := append([]string(nil), candidates...)
	sort.Strings(cs)
	return &Elector{self: self, mon: mon, candidates: cs}
}

// Leader returns the current leader: the first candidate in ranking
// order that is self or not suspected at instant now. If every candidate
// is suspected it falls back to self (some leader is better than none —
// Ω only promises eventual agreement).
func (e *Elector) Leader(now clock.Time) string {
	leader := e.self
	for _, c := range e.candidates {
		if c == e.self {
			leader = c
			break
		}
		st, ok := e.mon.StatusOf(c, now)
		if ok && st != StatusUnknown && st < StatusSuspected {
			leader = c
			break
		}
	}
	e.mu.Lock()
	old := e.lastLeader
	if leader != old {
		e.changes++
		e.lastLeader = leader
		subs := make([]func(old, new string, at clock.Time), len(e.subscribers))
		copy(subs, e.subscribers)
		e.mu.Unlock()
		for _, fn := range subs {
			fn(old, leader, now)
		}
		return leader
	}
	e.mu.Unlock()
	return leader
}

// Changes returns how many leadership transitions have been observed —
// the flapping metric.
func (e *Elector) Changes() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.changes
}

// OnChange registers a callback fired on every leadership transition
// observed by Leader.
func (e *Elector) OnChange(fn func(old, new string, at clock.Time)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.subscribers = append(e.subscribers, fn)
}

// Candidates returns the ranked candidate list.
func (e *Elector) Candidates() []string {
	return append([]string(nil), e.candidates...)
}
