// Package cluster provides the cloud-monitoring layer of the paper's
// model (Fig. 1): a Monitor that watches many servers with one failure
// detector each ("one monitors multiple"), a quorum aggregator combining
// several monitors' views ("multiple monitor multiple", §VII), the
// four-state server-status model from the introduction (active, busy/
// slow, suspected, offline), and a deterministic multi-cloud simulation
// of the U.S. southern-states education cloud consortium used by the
// examples and benchmarks.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/heartbeat"
	"repro/internal/stats"
)

// Status is a monitored server's state as the paper's introduction
// classifies it: "some of the servers are active and available, while
// others are busy or heavy loaded, and the remaining are offline or even
// crashed".
type Status int

const (
	// StatusUnknown: no heartbeat seen yet.
	StatusUnknown Status = iota
	// StatusActive: suspicion below the busy threshold.
	StatusActive
	// StatusBusy: heartbeats arriving late — the server is alive but
	// slow or heavily loaded (suspicion between the busy and suspect
	// thresholds).
	StatusBusy
	// StatusSuspected: suspicion above the suspect threshold.
	StatusSuspected
	// StatusOffline: suspected continuously for longer than the offline
	// grace period — treated as crashed (a crashed process does not
	// recover in the paper's model, but a wrongly-suspected server that
	// resumes heartbeats is restored).
	StatusOffline
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusUnknown:
		return "unknown"
	case StatusActive:
		return "active"
	case StatusBusy:
		return "busy"
	case StatusSuspected:
		return "suspected"
	case StatusOffline:
		return "offline"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options tunes a Monitor. The thresholds act on the accrual suspicion
// level (for detectors implementing detector.Accrual); binary detectors
// map trust→0 and suspect→SuspectLevel.
type Options struct {
	// BusyLevel is the suspicion level at which a server is reported
	// busy/slow (default 0.5 — half the safety margin consumed).
	BusyLevel float64
	// SuspectLevel is the level at which it is reported suspected
	// (default 1.0 — the freshness point, per the SFD accrual scale).
	SuspectLevel float64
	// OfflineAfter is how long a continuous suspicion lasts before the
	// server is declared offline (default 10 s).
	OfflineAfter clock.Duration
	// MaxSilence, when positive, is a safety net under the detector: a
	// peer whose last heartbeat is older than this is reported suspected
	// even if its detector never accumulated enough arrivals to form a
	// freshness point (e.g. the process crashed right after its first
	// beacon). 0 disables it.
	MaxSilence clock.Duration
}

func (o *Options) defaults() {
	if o.BusyLevel <= 0 {
		o.BusyLevel = 0.5
	}
	if o.SuspectLevel <= o.BusyLevel {
		o.SuspectLevel = o.BusyLevel + 0.5
	}
	if o.OfflineAfter <= 0 {
		o.OfflineAfter = 10 * clock.Second
	}
}

// Factory builds a fresh failure detector for a newly watched peer.
type Factory func(peer string) detector.Detector

// DefaultFactory returns SFD instances with the paper's defaults and the
// given QoS targets.
func DefaultFactory(targets core.Targets) Factory {
	return func(string) detector.Detector {
		cfg := core.DefaultConfig()
		cfg.Targets = targets
		return core.New(cfg)
	}
}

// Report is a point-in-time view of one monitored server.
type Report struct {
	Peer           string
	Status         Status
	SuspicionLevel float64
	LastSeq        uint64
	LastArrival    clock.Time
	FreshnessPoint clock.Time
	Detector       string
	// Incarnation is the server's current incarnation (0 until a v2
	// sender announces one).
	Incarnation uint64
}

// Monitor watches many peers, one detector each. It is safe for
// concurrent use (heartbeat receivers run on their own goroutines).
type Monitor struct {
	clk     clock.Clock
	factory Factory
	opts    Options

	mu    sync.Mutex
	peers map[string]*peerState

	// Detection-latency tail tracking across confirmed crashes (fed by
	// the simulation harness / integration tests).
	latP50, latP99 *stats.P2Quantile
}

type peerState struct {
	det          detector.Detector
	lastSeq      uint64
	lastArrival  clock.Time
	seen         bool
	inc          uint64
	suspectSince clock.Time
	suspected    bool
}

// NewMonitor builds a Monitor creating detectors with factory.
func NewMonitor(clk clock.Clock, factory Factory, opts Options) *Monitor {
	if clk == nil {
		clk = clock.NewReal()
	}
	if factory == nil {
		factory = DefaultFactory(core.Targets{})
	}
	opts.defaults()
	return &Monitor{
		clk: clk, factory: factory, opts: opts,
		peers:  make(map[string]*peerState),
		latP50: stats.NewP2Quantile(0.5),
		latP99: stats.NewP2Quantile(0.99),
	}
}

// Watch registers a peer (idempotent).
func (m *Monitor) Watch(peer string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.peers[peer]; !ok {
		m.peers[peer] = &peerState{det: m.factory(peer)}
	}
}

// Unwatch removes a peer.
func (m *Monitor) Unwatch(peer string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.peers, peer)
}

// Peers returns the watched peer names, sorted.
func (m *Monitor) Peers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.peers))
	for p := range m.peers {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Observe feeds one heartbeat arrival; it matches heartbeat.Handler, so a
// Monitor can be wired directly into a Receiver:
//
//	recv := heartbeat.NewReceiver(ep, clk, monitor.Observe)
//
// Arrivals from unwatched peers auto-register them (a new server joining
// the cloud announces itself by heartbeating).
func (m *Monitor) Observe(a heartbeat.Arrival) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok := m.peers[a.From]
	if !ok {
		ps = &peerState{det: m.factory(a.From)}
		m.peers[a.From] = ps
	}
	if ps.seen && (a.Inc < ps.inc || (a.Inc == ps.inc && a.Seq <= ps.lastSeq)) {
		return // stale, or from a dead incarnation
	}
	if ps.seen && a.Inc > ps.inc {
		// A restarted server: its arrival process shares no history with
		// the old incarnation, so the detector starts over.
		ps.det = m.factory(a.From)
	}
	ps.inc = a.Inc
	ps.det.Observe(a.Seq, a.Send, a.Recv)
	ps.lastSeq, ps.lastArrival, ps.seen = a.Seq, a.Recv, true
}

// level computes the suspicion level of a peer at instant now.
func (m *Monitor) level(ps *peerState, now clock.Time) float64 {
	if acc, ok := ps.det.(detector.Accrual); ok {
		return acc.SuspicionLevel(now)
	}
	if ps.det.Suspect(now) {
		return m.opts.SuspectLevel
	}
	return 0
}

// statusLocked classifies a peer and maintains its suspicion episode
// bookkeeping. Must hold mu.
func (m *Monitor) statusLocked(ps *peerState, now clock.Time) (Status, float64) {
	if !ps.seen {
		return StatusUnknown, 0
	}
	lvl := m.level(ps, now)
	if m.opts.MaxSilence > 0 && now.Sub(ps.lastArrival) > m.opts.MaxSilence && lvl < m.opts.SuspectLevel {
		lvl = m.opts.SuspectLevel
	}
	switch {
	case lvl >= m.opts.SuspectLevel:
		if !ps.suspected {
			ps.suspected = true
			// The suspicion episode began when the freshness point
			// expired, not when somebody first asked — otherwise a
			// rarely-queried monitor would never reach OfflineAfter.
			ps.suspectSince = now
			if fp := ps.det.FreshnessPoint(); fp > 0 && fp.Before(now) {
				ps.suspectSince = fp
			}
		}
		if now.Sub(ps.suspectSince) >= m.opts.OfflineAfter {
			return StatusOffline, lvl
		}
		return StatusSuspected, lvl
	case lvl >= m.opts.BusyLevel:
		ps.suspected = false
		return StatusBusy, lvl
	default:
		ps.suspected = false
		return StatusActive, lvl
	}
}

// StatusOf returns one peer's classification at instant now.
func (m *Monitor) StatusOf(peer string, now clock.Time) (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok := m.peers[peer]
	if !ok {
		return StatusUnknown, false
	}
	st, _ := m.statusLocked(ps, now)
	return st, true
}

// Snapshot reports every watched peer at instant now, sorted by name —
// the "guidance" the paper's PlanetLab motivation asks for ("it is
// impractical to login one by one without any guidance").
func (m *Monitor) Snapshot(now clock.Time) []Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Report, 0, len(m.peers))
	for name, ps := range m.peers {
		st, lvl := m.statusLocked(ps, now)
		out = append(out, Report{
			Peer:           name,
			Status:         st,
			SuspicionLevel: lvl,
			LastSeq:        ps.lastSeq,
			LastArrival:    ps.lastArrival,
			FreshnessPoint: ps.det.FreshnessPoint(),
			Detector:       ps.det.Name(),
			Incarnation:    ps.inc,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// EvictOffline removes every peer that has been offline for longer than
// grace beyond the offline threshold (i.e. suspected continuously for at
// least OfflineAfter+grace) and returns their names, sorted. A crashed
// process never recovers in the paper's model, so keeping its detector
// forever only grows the table; long-lived monitors under churn should
// call this periodically. grace <= 0 evicts as soon as a peer turns
// offline.
func (m *Monitor) EvictOffline(now clock.Time, grace clock.Duration) []string {
	if grace < 0 {
		grace = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var evicted []string
	for name, ps := range m.peers {
		st, _ := m.statusLocked(ps, now)
		if st == StatusOffline && now.Sub(ps.suspectSince) >= m.opts.OfflineAfter+grace {
			delete(m.peers, name)
			evicted = append(evicted, name)
		}
	}
	sort.Strings(evicted)
	return evicted
}

// RecordDetectionLatency feeds one confirmed crash-to-detection latency
// into the monitor's tail estimators (used by the simulation harness).
func (m *Monitor) RecordDetectionLatency(d clock.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.latP50.Add(float64(d))
	m.latP99.Add(float64(d))
}

// DetectionLatency returns the median and p99 of recorded crash-detection
// latencies; ok is false before any sample.
func (m *Monitor) DetectionLatency() (p50, p99 clock.Duration, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.latP50.Count() == 0 {
		return 0, 0, false
	}
	return clock.Duration(m.latP50.Value()), clock.Duration(m.latP99.Value()), true
}

// Quorum aggregates several monitors' views of the same peer set — the
// "multiple monitor multiple" deployment of §VII. A peer is suspected
// globally when at least Need monitors classify it at or above
// StatusSuspected; this masks individual monitors' wrong suspicions
// caused by their own network paths.
type Quorum struct {
	Monitors []*Monitor
	Need     int
}

// Suspected reports whether the quorum suspects the peer at instant now,
// along with the per-monitor vote count.
func (q Quorum) Suspected(peer string, now clock.Time) (bool, int) {
	votes := 0
	for _, m := range q.Monitors {
		if st, ok := m.StatusOf(peer, now); ok && st >= StatusSuspected {
			votes++
		}
	}
	need := q.Need
	if need <= 0 {
		need = len(q.Monitors)/2 + 1
	}
	return votes >= need, votes
}
