package cluster

import (
	"sort"
	"sync"

	"repro/internal/clock"
	"repro/internal/detector"
)

// ActionFunc reacts to a peer's suspicion level crossing a threshold.
type ActionFunc func(peer string, level float64, at clock.Time)

// Reactor implements the paper's graduated-reaction pattern (§I): "an
// application may take precautionary network measures when the
// confidence in a suspicion reaches a given low level, while it takes
// successively more drastic actions once the doubt progresses to higher
// levels". Applications register actions at ascending suspicion
// thresholds against an accrual detector; each action fires once per
// suspicion episode, in threshold order, and the episode rearms when the
// level falls back below the lowest threshold (the peer proved alive).
type Reactor struct {
	mu      sync.Mutex
	actions []reaction // sorted by threshold ascending
	fired   map[string]int
}

type reaction struct {
	threshold float64
	name      string
	fn        ActionFunc
}

// NewReactor returns an empty reactor.
func NewReactor() *Reactor {
	return &Reactor{fired: make(map[string]int)}
}

// On registers an action at the given suspicion threshold. Registration
// order is irrelevant; actions fire in ascending threshold order.
func (r *Reactor) On(threshold float64, name string, fn ActionFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.actions = append(r.actions, reaction{threshold: threshold, name: name, fn: fn})
	sort.SliceStable(r.actions, func(i, j int) bool {
		return r.actions[i].threshold < r.actions[j].threshold
	})
}

// Evaluate samples the peer's suspicion level and fires any newly crossed
// actions. Call it periodically (or on arrival events). It returns the
// names of the actions fired during this call.
func (r *Reactor) Evaluate(peer string, level float64, at clock.Time) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.actions) == 0 {
		return nil
	}
	// Episode rearm: level fell below the lowest threshold.
	if level < r.actions[0].threshold {
		r.fired[peer] = 0
		return nil
	}
	idx := r.fired[peer]
	var firedNames []string
	var toFire []reaction
	for idx < len(r.actions) && level >= r.actions[idx].threshold {
		toFire = append(toFire, r.actions[idx])
		firedNames = append(firedNames, r.actions[idx].name)
		idx++
	}
	r.fired[peer] = idx
	r.mu.Unlock()
	for _, a := range toFire {
		a.fn(peer, level, at)
	}
	r.mu.Lock()
	return firedNames
}

// EvaluateDetector samples an accrual detector directly.
func (r *Reactor) EvaluateDetector(peer string, det detector.Accrual, now clock.Time) []string {
	return r.Evaluate(peer, det.SuspicionLevel(now), now)
}

// Reset clears all per-peer episode state.
func (r *Reactor) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fired = make(map[string]int)
}
