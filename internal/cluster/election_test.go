package cluster

import (
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/heartbeat"
	"repro/internal/netsim"
)

func TestElectorPicksLowestAliveCandidate(t *testing.T) {
	m := NewMonitor(clock.NewSim(0), chenFactory(100*msK), Options{})
	last := feedMonitor(m, "a", 60, 100*msK)
	feedMonitor(m, "b", 75, 100*msK) // b keeps heartbeating past a's silence
	e := NewElector("c", m, []string{"c", "a", "b"})
	if got := e.Candidates(); got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("ranking = %v", got)
	}
	now := last.Add(10 * msK)
	if l := e.Leader(now); l != "a" {
		t.Fatalf("leader = %q, want a", l)
	}
	// "a" goes silent: leadership falls to "b".
	if l := e.Leader(last.Add(clock.Second)); l != "b" {
		t.Fatalf("leader after a's silence = %q, want b", l)
	}
	if e.Changes() != 2 { // "" → a, a → b
		t.Fatalf("changes = %d, want 2", e.Changes())
	}
}

func TestElectorFallsBackToSelf(t *testing.T) {
	m := NewMonitor(clock.NewSim(0), chenFactory(100*msK), Options{})
	last := feedMonitor(m, "a", 60, 100*msK)
	e := NewElector("z", m, []string{"a", "z"})
	if l := e.Leader(last.Add(10 * clock.Second)); l != "z" {
		t.Fatalf("no fallback to self: %q", l)
	}
}

func TestElectorSelfIsNeverSuspected(t *testing.T) {
	m := NewMonitor(clock.NewSim(0), chenFactory(100*msK), Options{})
	e := NewElector("a", m, []string{"a", "b"})
	// No heartbeats at all: "a" leads because it is self.
	if l := e.Leader(clock.Time(clock.Second)); l != "a" {
		t.Fatalf("leader = %q, want self", l)
	}
}

func TestElectorUnknownPeersSkipped(t *testing.T) {
	m := NewMonitor(clock.NewSim(0), chenFactory(100*msK), Options{})
	m.Watch("a") // watched but never heard from
	last := feedMonitor(m, "b", 60, 100*msK)
	e := NewElector("c", m, []string{"a", "b", "c"})
	if l := e.Leader(last.Add(10 * msK)); l != "b" {
		t.Fatalf("leader = %q, want b (a never seen)", l)
	}
}

func TestElectorOnChangeCallback(t *testing.T) {
	m := NewMonitor(clock.NewSim(0), chenFactory(100*msK), Options{})
	last := feedMonitor(m, "a", 60, 100*msK)
	e := NewElector("b", m, []string{"a", "b"})
	var transitions []string
	e.OnChange(func(old, new string, at clock.Time) {
		transitions = append(transitions, old+"→"+new)
	})
	e.Leader(last.Add(10 * msK))     // → a
	e.Leader(last.Add(clock.Second)) // a suspected → b
	if len(transitions) != 2 || transitions[1] != "a→b" {
		t.Fatalf("transitions = %v", transitions)
	}
}

func TestElectionConvergesAcrossSimCluster(t *testing.T) {
	// Every node heartbeats to every other; each runs its own monitor and
	// elector. After warm-up all agree on p0; after p0 crashes all
	// converge to p1 — Ω in action.
	sc := NewSimCluster(netsim.LinkParams{DelayBase: 2 * msK, JitterMean: msK, JitterStd: msK}, 11)
	const n = 4
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
	}
	monitors := make([]*SimMonitor, n)
	electors := make([]*Elector, n)
	for i, name := range names {
		monitors[i] = sc.AddMonitor(name+"/mon", chenFactory(200*msK), Options{})
	}
	for i, name := range names {
		var targets []string
		for j := range names {
			if j != i {
				targets = append(targets, names[j]+"/mon")
			}
		}
		sc.AddSender(name, 100*msK, 2*msK, targets...)
		for j := range names {
			if j != i {
				monitors[j].Mon.Watch(name)
			}
		}
	}
	for i, name := range names {
		electors[i] = NewElector(name, monitors[i].Mon, names)
	}

	sc.RunFor(15*clock.Second, 10*msK)
	now := sc.Clk.Now()
	for i, e := range electors {
		if l := e.Leader(now); l != "p0" {
			t.Fatalf("elector %d picked %q before crash, want p0", i, l)
		}
	}

	sc.Sender("p0").Crash()
	sc.RunFor(3*clock.Second, 10*msK)
	now = sc.Clk.Now()
	for i, e := range electors {
		l := e.Leader(now)
		want := "p1"
		if i == 0 {
			continue // the crashed node's own elector is moot
		}
		if l != want {
			t.Fatalf("elector %d picked %q after crash, want %q", i, l, want)
		}
	}
}

// TestElectorOnChangePromotionDemotion drives the promotion/demotion
// arc the federation HA tier hangs off OnChange: a node promotes when
// the transition's new leader is itself, demotes when the old one was.
// The arc here is the failover-and-failback cycle: self leads while the
// lower-ranked peer is unknown, demotes when that peer appears, promotes
// when it goes silent, and demotes again when it recovers.
func TestElectorOnChangePromotionDemotion(t *testing.T) {
	m := NewMonitor(clock.NewSim(0), chenFactory(100*msK), Options{})
	e := NewElector("b", m, []string{"a", "b"})
	var promotions, demotions int
	e.OnChange(func(old, new string, at clock.Time) {
		if new == "b" {
			promotions++
		}
		if old == "b" {
			demotions++
		}
	})

	// "a" has never been heard from: "b" leads (first promotion).
	if l := e.Leader(clock.Time(100 * msK)); l != "b" {
		t.Fatalf("leader = %q, want b", l)
	}
	if promotions != 1 || demotions != 0 {
		t.Fatalf("after cold start: promotions=%d demotions=%d, want 1/0", promotions, demotions)
	}

	// "a" (lower rank) starts heartbeating: "b" demotes.
	last := feedMonitor(m, "a", 60, 100*msK)
	if l := e.Leader(last.Add(10 * msK)); l != "a" {
		t.Fatalf("leader = %q, want a", l)
	}
	if promotions != 1 || demotions != 1 {
		t.Fatalf("after a appears: promotions=%d demotions=%d, want 1/1", promotions, demotions)
	}

	// "a" goes silent: "b" promotes again.
	silentAt := last.Add(clock.Second)
	if l := e.Leader(silentAt); l != "b" {
		t.Fatalf("leader = %q, want b after a's silence", l)
	}
	if promotions != 2 || demotions != 1 {
		t.Fatalf("after a's silence: promotions=%d demotions=%d, want 2/1", promotions, demotions)
	}

	// "a" recovers (resumed heartbeats at the old cadence): "b" demotes —
	// the deterministic failback the HA aggregator pair relies on.
	resume := silentAt.Add(clock.Second)
	var lastResumed clock.Time
	for i := 0; i < 60; i++ {
		send := resume.Add(clock.Duration(i) * 100 * msK)
		lastResumed = send.Add(2 * msK)
		m.Observe(heartbeat.Arrival{From: "a", Seq: uint64(100 + i), Send: send, Recv: lastResumed})
	}
	if l := e.Leader(lastResumed.Add(10 * msK)); l != "a" {
		t.Fatalf("leader = %q, want a after recovery", l)
	}
	if promotions != 2 || demotions != 2 {
		t.Fatalf("after a recovers: promotions=%d demotions=%d, want 2/2", promotions, demotions)
	}
	if e.Changes() != 4 {
		t.Fatalf("changes = %d, want 4", e.Changes())
	}
}

// TestElectorOnChangeStability pins down two contract details promotion
// hooks depend on: a steady leader fires no callbacks no matter how
// often Leader is polled, and every registered subscriber sees every
// transition exactly once.
func TestElectorOnChangeStability(t *testing.T) {
	m := NewMonitor(clock.NewSim(0), chenFactory(100*msK), Options{})
	last := feedMonitor(m, "a", 60, 100*msK)
	e := NewElector("b", m, []string{"a", "b"})
	var first, second int
	e.OnChange(func(old, new string, at clock.Time) { first++ })
	e.OnChange(func(old, new string, at clock.Time) { second++ })

	now := last.Add(10 * msK)
	for i := 0; i < 10; i++ {
		if l := e.Leader(now); l != "a" {
			t.Fatalf("leader = %q, want a", l)
		}
	}
	if first != 1 || second != 1 {
		t.Fatalf("steady leader fired callbacks %d/%d times, want 1/1", first, second)
	}
	e.Leader(last.Add(clock.Second)) // a silent → b
	if first != 2 || second != 2 {
		t.Fatalf("transition fired callbacks %d/%d times, want 2/2", first, second)
	}
}
