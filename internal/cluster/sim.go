package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/clock"
	"repro/internal/heartbeat"
	"repro/internal/netsim"
	"repro/internal/stats"
)

// SimCluster is a deterministic multi-node monitoring deployment over the
// network simulator: heartbeat senders and monitors wired through
// simulated WAN links, driven by a simulated clock. It is the testbed for
// the Fig. 1 consortium scenario, the crash-injection benchmarks, and the
// "one monitors multiple" claims.
type SimCluster struct {
	Clk *clock.Sim
	Net *netsim.Network

	rng      *rand.Rand
	senders  map[string]*SimSender
	monitors map[string]*SimMonitor
}

// NewSimCluster creates an empty deployment with the given default link.
func NewSimCluster(def netsim.LinkParams, seed int64) *SimCluster {
	clk := clock.NewSim(0)
	return &SimCluster{
		Clk:      clk,
		Net:      netsim.New(clk, def, seed),
		rng:      rand.New(rand.NewSource(seed + 1)),
		senders:  make(map[string]*SimSender),
		monitors: make(map[string]*SimMonitor),
	}
}

// SimSender is a simulated heartbeat-emitting server process.
type SimSender struct {
	name     string
	node     *netsim.Node
	clk      *clock.Sim
	rng      *rand.Rand
	interval clock.Duration
	jitter   clock.Duration // extra uniform delay per beat (OS scheduling noise)
	targets  []string

	seq     uint64
	crashed bool
	busy    clock.Duration // extra per-beat sluggishness while "heavy loaded"
	crashAt clock.Time
}

// AddSender registers a server that heartbeats every interval (±jitter)
// to the listed monitor addresses.
func (c *SimCluster) AddSender(name string, interval, jitter clock.Duration, targets ...string) *SimSender {
	if _, dup := c.senders[name]; dup {
		panic(fmt.Sprintf("cluster: duplicate sender %q", name))
	}
	s := &SimSender{
		name: name, node: c.Net.AddNode(name, 64), clk: c.Clk,
		rng:      rand.New(rand.NewSource(c.rng.Int63())),
		interval: interval, jitter: jitter, targets: append([]string(nil), targets...),
	}
	c.senders[name] = s
	s.scheduleNext(0)
	return s
}

func (s *SimSender) scheduleNext(d clock.Duration) {
	s.clk.AfterFunc(d, func(now clock.Time) {
		if s.crashed {
			return
		}
		msg := heartbeat.Message{Kind: heartbeat.KindHeartbeat, Seq: s.seq, Time: now}
		s.seq++
		payload := msg.Marshal()
		for _, t := range s.targets {
			_ = s.node.Send(t, payload)
		}
		next := s.interval + s.busy
		if s.jitter > 0 {
			next += clock.Duration(s.rng.Int63n(int64(s.jitter)))
		}
		s.scheduleNext(next)
	})
}

// Crash stops the server's heartbeats permanently, recording the instant.
func (s *SimSender) Crash() {
	if !s.crashed {
		s.crashed = true
		s.crashAt = s.clk.Now()
	}
}

// Crashed reports whether the server has crashed, and when.
func (s *SimSender) Crashed() (bool, clock.Time) { return s.crashed, s.crashAt }

// SetBusy adds per-beat sluggishness, modelling a heavy-loaded server
// whose heartbeats stretch out without stopping.
func (s *SimSender) SetBusy(extra clock.Duration) {
	if extra < 0 {
		extra = 0
	}
	s.busy = extra
}

// Sent returns the number of heartbeats emitted.
func (s *SimSender) Sent() uint64 { return s.seq }

// SimMonitor couples a network node with a Monitor, decoding heartbeat
// datagrams from the node's inbox.
type SimMonitor struct {
	name string
	node *netsim.Node
	Mon  *Monitor
}

// AddMonitor registers a monitoring process using the given detector
// factory and options.
func (c *SimCluster) AddMonitor(name string, factory Factory, opts Options) *SimMonitor {
	if _, dup := c.monitors[name]; dup {
		panic(fmt.Sprintf("cluster: duplicate monitor %q", name))
	}
	m := &SimMonitor{
		name: name,
		node: c.Net.AddNode(name, 4096),
		Mon:  NewMonitor(c.Clk, factory, opts),
	}
	c.monitors[name] = m
	return m
}

// pump drains the monitor's inbox into its detectors.
func (m *SimMonitor) pump() {
	for {
		in, ok := m.node.TryRecv()
		if !ok {
			return
		}
		msg, err := heartbeat.Unmarshal(in.Payload)
		if err != nil || msg.Kind != heartbeat.KindHeartbeat {
			continue
		}
		m.Mon.Observe(heartbeat.Arrival{From: in.From, Seq: msg.Seq, Send: msg.Time, Recv: in.At})
	}
}

// Monitor returns a registered monitor by name (nil if absent).
func (c *SimCluster) Monitor(name string) *SimMonitor { return c.monitors[name] }

// Sender returns a registered sender by name (nil if absent).
func (c *SimCluster) Sender(name string) *SimSender { return c.senders[name] }

// MonitorNames returns the registered monitors, sorted.
func (c *SimCluster) MonitorNames() []string {
	out := make([]string, 0, len(c.monitors))
	for n := range c.monitors {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RunFor advances simulated time by total in steps of step (default
// 10 ms), pumping every monitor between steps so arrivals are observed
// promptly.
func (c *SimCluster) RunFor(total, step clock.Duration) {
	if step <= 0 {
		step = 10 * clock.Millisecond
	}
	for elapsed := clock.Duration(0); elapsed < total; elapsed += step {
		c.Clk.Advance(step)
		for _, m := range c.monitors {
			m.pump()
		}
	}
}

// DetectCrash advances simulated time until the named monitor classifies
// the peer at or above StatusSuspected, or maxWait elapses. It returns
// the detection latency measured from the peer's crash instant; ok is
// false on timeout or if the peer never crashed.
func (c *SimCluster) DetectCrash(monitor, peer string, maxWait clock.Duration) (clock.Duration, bool) {
	m := c.monitors[monitor]
	s := c.senders[peer]
	if m == nil || s == nil {
		return 0, false
	}
	crashed, at := s.Crashed()
	if !crashed {
		return 0, false
	}
	const step = 5 * clock.Millisecond
	deadline := c.Clk.Now().Add(maxWait)
	for c.Clk.Now().Before(deadline) {
		c.Clk.Advance(step)
		m.pump()
		if st, ok := m.Mon.StatusOf(peer, c.Clk.Now()); ok && st >= StatusSuspected {
			lat := c.Clk.Now().Sub(at)
			m.Mon.RecordDetectionLatency(lat)
			return lat, true
		}
	}
	return 0, false
}

// Cloud is one member cloud of the consortium: a manager process that
// monitors the cloud's servers and is itself monitored by the other
// clouds' managers (the paper's footnote 6: "process q is like a manager,
// and process p is like an education cloud").
type Cloud struct {
	Name    string
	Manager *SimMonitor
	Servers []*SimSender
}

// Consortium is the Fig. 1 scenario: several education clouds whose
// managers cross-monitor each other, built on WAN-grade links.
type Consortium struct {
	*SimCluster
	Clouds map[string]*Cloud
}

// ConsortiumConfig parameterizes BuildConsortium.
type ConsortiumConfig struct {
	CloudNames      []string // default: the five states of Fig. 1
	ServersPerCloud int      // default 3
	Interval        clock.Duration
	Jitter          clock.Duration
	IntraCloud      netsim.LinkParams // manager ↔ own servers
	InterCloud      netsim.LinkParams // manager ↔ manager (WAN)
	Factory         Factory
	Options         Options
	Seed            int64
}

// BuildConsortium constructs the education-cloud consortium: each cloud
// gets a manager monitoring its servers over LAN-grade links, and every
// manager heartbeats to — and monitors — every other manager over
// WAN-grade links.
func BuildConsortium(cfg ConsortiumConfig) *Consortium {
	if len(cfg.CloudNames) == 0 {
		cfg.CloudNames = []string{"GA", "SC", "NC", "VA", "MD"}
	}
	if cfg.ServersPerCloud <= 0 {
		cfg.ServersPerCloud = 3
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * clock.Millisecond
	}
	if cfg.IntraCloud == (netsim.LinkParams{}) {
		cfg.IntraCloud = netsim.LinkParams{
			DelayBase: clock.Millisecond, JitterMean: clock.Millisecond,
			JitterStd: clock.Millisecond,
		}
	}
	if cfg.InterCloud == (netsim.LinkParams{}) {
		cfg.InterCloud = netsim.LinkParams{
			DelayBase: 40 * clock.Millisecond, JitterMean: 5 * clock.Millisecond,
			JitterStd: 8 * clock.Millisecond, TailProb: 0.002,
			TailScale: 60 * clock.Millisecond, LossRate: 0.01, MeanBurst: 3,
		}
	}
	sc := NewSimCluster(cfg.IntraCloud, cfg.Seed)
	con := &Consortium{SimCluster: sc, Clouds: make(map[string]*Cloud)}

	managerAddr := func(cloud string) string { return cloud + "/manager" }

	// Managers first, so servers can target them.
	for _, name := range cfg.CloudNames {
		mon := sc.AddMonitor(managerAddr(name), cfg.Factory, cfg.Options)
		con.Clouds[name] = &Cloud{Name: name, Manager: mon}
	}
	// Servers heartbeat to their own manager.
	for _, name := range cfg.CloudNames {
		cl := con.Clouds[name]
		for i := 0; i < cfg.ServersPerCloud; i++ {
			srvName := fmt.Sprintf("%s/server-%d", name, i)
			s := sc.AddSender(srvName, cfg.Interval, cfg.Jitter, managerAddr(name))
			cl.Manager.Mon.Watch(srvName)
			cl.Servers = append(cl.Servers, s)
		}
	}
	// Cross-cloud: each manager heartbeats to every other manager over
	// WAN links (managers are both senders and monitors; the sender half
	// is a separate sim node since netsim addresses are unique).
	for _, a := range cfg.CloudNames {
		beaconName := a + "/beacon"
		var targets []string
		for _, b := range cfg.CloudNames {
			if a == b {
				continue
			}
			targets = append(targets, managerAddr(b))
		}
		sc.AddSender(beaconName, cfg.Interval, cfg.Jitter, targets...)
		for _, b := range cfg.CloudNames {
			if a == b {
				continue
			}
			sc.Net.SetLink(beaconName, managerAddr(b), cfg.InterCloud)
			con.Clouds[b].Manager.Mon.Watch(beaconName)
		}
	}
	return con
}

// CrossCloudQuorum returns a Quorum over every cloud manager except the
// named cloud's own (a cloud cannot vote on itself).
func (c *Consortium) CrossCloudQuorum(excludeCloud string) Quorum {
	var mons []*Monitor
	names := make([]string, 0, len(c.Clouds))
	for n := range c.Clouds {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if n == excludeCloud {
			continue
		}
		mons = append(mons, c.Clouds[n].Manager.Mon)
	}
	return Quorum{Monitors: mons}
}

// LatencySummary aggregates detection latencies recorded across all of a
// consortium's managers.
func (c *Consortium) LatencySummary() (w stats.Welford) {
	for _, cl := range c.Clouds {
		if p50, _, ok := cl.Manager.Mon.DetectionLatency(); ok {
			w.Add(float64(p50))
		}
	}
	return w
}
