package clock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(250 * Millisecond)
	if got := t1.Sub(t0); got != 250*Millisecond {
		t.Fatalf("Sub = %v, want 250ms", got)
	}
	if !t0.Before(t1) || t1.Before(t0) {
		t.Fatal("Before ordering wrong")
	}
	if !t1.After(t0) || t0.After(t1) {
		t.Fatal("After ordering wrong")
	}
	if got := t1.Seconds(); got != 0.25 {
		t.Fatalf("Seconds = %v, want 0.25", got)
	}
	if got := FromSeconds(0.25); got != t1 {
		t.Fatalf("FromSeconds = %v, want %v", got, t1)
	}
}

func TestTimeAddSubRoundTrip(t *testing.T) {
	f := func(base int64, delta int32) bool {
		t0 := Time(base)
		d := Duration(delta)
		return t0.Add(d).Sub(t0) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRealClockMonotonic(t *testing.T) {
	c := NewReal()
	a := c.Now()
	time.Sleep(time.Millisecond)
	b := c.Now()
	if !b.After(a) {
		t.Fatalf("real clock did not advance: %v then %v", a, b)
	}
}

func TestRealClockAfter(t *testing.T) {
	c := NewReal()
	start := c.Now()
	fired := <-c.After(5 * time.Millisecond)
	if fired.Sub(start) < 4*time.Millisecond {
		t.Fatalf("After fired too early: %v", fired.Sub(start))
	}
}

func TestSimNowStartsAtOrigin(t *testing.T) {
	s := NewSim(Time(42))
	if s.Now() != 42 {
		t.Fatalf("Now = %d, want 42", s.Now())
	}
}

func TestSimAdvanceMovesTime(t *testing.T) {
	s := NewSim(0)
	s.Advance(3 * Second)
	if s.Now() != Time(3*Second) {
		t.Fatalf("Now = %v, want 3s", s.Now())
	}
	s.Advance(-Second) // negative advance is a no-op
	if s.Now() != Time(3*Second) {
		t.Fatal("negative Advance moved time")
	}
}

func TestSimAfterFiresInOrder(t *testing.T) {
	s := NewSim(0)
	var order []int
	s.AfterFunc(30*Millisecond, func(Time) { order = append(order, 3) })
	s.AfterFunc(10*Millisecond, func(Time) { order = append(order, 1) })
	s.AfterFunc(20*Millisecond, func(Time) { order = append(order, 2) })
	s.Advance(50 * Millisecond)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestSimEqualDeadlinesFIFO(t *testing.T) {
	s := NewSim(0)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.AfterFunc(Millisecond, func(Time) { order = append(order, i) })
	}
	s.Advance(Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-deadline order = %v, want FIFO", order)
		}
	}
}

func TestSimAfterChannel(t *testing.T) {
	s := NewSim(0)
	ch := s.After(100 * Millisecond)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	s.Advance(100 * Millisecond)
	got := <-ch
	if got != Time(100*Millisecond) {
		t.Fatalf("fire time = %v, want 100ms", got)
	}
}

func TestSimAfterZeroFiresImmediately(t *testing.T) {
	s := NewSim(Time(7))
	got := <-s.After(0)
	if got != 7 {
		t.Fatalf("fire time = %v, want 7", got)
	}
}

func TestSimCallbackSchedulesCallback(t *testing.T) {
	s := NewSim(0)
	var times []Time
	var tick func(Time)
	tick = func(now Time) {
		times = append(times, now)
		if len(times) < 4 {
			s.AfterFunc(10*Millisecond, tick)
		}
	}
	s.AfterFunc(10*Millisecond, tick)
	s.Advance(100 * Millisecond)
	if len(times) != 4 {
		t.Fatalf("got %d ticks, want 4", len(times))
	}
	for i, at := range times {
		want := Time((i + 1) * 10 * int(Millisecond))
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestSimAdvanceToPastIsNoop(t *testing.T) {
	s := NewSim(Time(Second))
	s.AdvanceTo(Time(Millisecond))
	if s.Now() != Time(Second) {
		t.Fatal("AdvanceTo moved time backwards")
	}
}

func TestSimRunUntilIdle(t *testing.T) {
	s := NewSim(0)
	count := 0
	s.AfterFunc(Second, func(Time) { count++ })
	s.AfterFunc(2*Second, func(Time) { count++ })
	fired := s.RunUntilIdle()
	if fired != 2 || count != 2 {
		t.Fatalf("fired=%d count=%d, want 2,2", fired, count)
	}
	if s.Now() != Time(2*Second) {
		t.Fatalf("Now = %v, want 2s", s.Now())
	}
	if s.PendingWaiters() != 0 {
		t.Fatal("waiters remain after RunUntilIdle")
	}
}

func TestSimJumpFiresWaitersAtLanding(t *testing.T) {
	s := NewSim(0)
	var firedAt Time = -1
	s.AfterFunc(10*Millisecond, func(now Time) { firedAt = now })
	s.Jump(time.Second)
	if firedAt != Time(time.Second) {
		t.Fatalf("jumped waiter fired at %v, want 1s (landing instant)", firedAt)
	}
}

func TestSimSleepUnblocksOnAdvance(t *testing.T) {
	s := NewSim(0)
	done := make(chan struct{})
	go func() {
		s.Sleep(50 * Millisecond)
		close(done)
	}()
	// Wait for the sleeper to register its waiter.
	for s.PendingWaiters() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	s.Advance(50 * Millisecond)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep never returned after Advance")
	}
}

func TestSimAdvanceFiresOnlyDueWaiters(t *testing.T) {
	s := NewSim(0)
	fired := 0
	s.AfterFunc(10*Millisecond, func(Time) { fired++ })
	s.AfterFunc(30*Millisecond, func(Time) { fired++ })
	s.Advance(20 * Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.PendingWaiters() != 1 {
		t.Fatalf("pending = %d, want 1", s.PendingWaiters())
	}
}

func TestSimManyWaitersProperty(t *testing.T) {
	// Property: regardless of insertion order, waiters fire in
	// nondecreasing deadline order.
	f := func(deadlines []uint16) bool {
		s := NewSim(0)
		var fired []Time
		for _, d := range deadlines {
			s.AfterFunc(Duration(d)*Microsecond, func(at Time) {
				fired = append(fired, at)
			})
		}
		s.RunUntilIdle()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(deadlines)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
