// Package clock provides the time abstraction used throughout the
// repository: a monotonic Time in nanoseconds, a Clock interface, a
// wall-clock implementation, and a deterministic simulated clock for
// discrete-event simulation and tests.
//
// The paper's system model (§II-B) assumes processes have access to a
// local clock device used to measure the passage of time, with no global
// synchronization requirement beyond negligible drift. All detector and
// QoS code is written against the Clock interface so that the same code
// runs over real UDP heartbeats and over simulated or replayed traces.
package clock

import (
	"sync"
	"time"
)

// Time is a monotonic instant in nanoseconds since an arbitrary origin.
// It is deliberately not time.Time: traces, simulators and detectors only
// ever need a totally ordered monotonic scalar, and int64 nanoseconds make
// trace files compact and arithmetic allocation-free.
type Time int64

// Duration aliases time.Duration; all intervals in the repository are
// expressed with it.
type Duration = time.Duration

// Common durations re-exported for convenience.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t−u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromSeconds converts seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Clock abstracts a monotonic time source plus timer facilities.
type Clock interface {
	// Now returns the current monotonic instant.
	Now() Time
	// After returns a channel that delivers the fire time once d has
	// elapsed.
	After(d Duration) <-chan Time
	// Sleep blocks the caller for d.
	Sleep(d Duration)
}

// Real is a Clock backed by the process monotonic clock.
type Real struct {
	origin time.Time
	once   sync.Once
}

// NewReal returns a wall-clock-backed Clock whose origin is the moment of
// creation.
func NewReal() *Real {
	return &Real{origin: time.Now()}
}

// Now returns nanoseconds elapsed since the clock was created.
func (r *Real) Now() Time { return Time(time.Since(r.origin)) }

// After mirrors time.After, translated into clock Time.
func (r *Real) After(d Duration) <-chan Time {
	ch := make(chan Time, 1)
	go func() {
		time.Sleep(d)
		ch <- r.Now()
	}()
	return ch
}

// Sleep blocks for d.
func (r *Real) Sleep(d Duration) { time.Sleep(d) }
