package clock

import (
	"container/heap"
	"sync"
)

// Sim is a deterministic simulated Clock. Time only advances when Advance
// or Run is called, which makes tests and discrete-event simulations fully
// reproducible. Sim is safe for concurrent use.
type Sim struct {
	mu      sync.Mutex
	now     Time
	waiters waiterHeap
	seq     int64 // tie-break so equal-deadline waiters fire FIFO
}

type waiter struct {
	at  Time
	seq int64
	ch  chan Time
	fn  func(Time)
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// NewSim returns a simulated clock starting at the given origin.
func NewSim(origin Time) *Sim {
	return &Sim{now: origin}
}

// Now returns the current simulated instant.
func (s *Sim) Now() Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// After returns a channel that receives the fire time when the simulated
// clock reaches now+d.
func (s *Sim) After(d Duration) <-chan Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan Time, 1)
	if d <= 0 {
		ch <- s.now
		return ch
	}
	s.seq++
	heap.Push(&s.waiters, &waiter{at: s.now.Add(d), seq: s.seq, ch: ch})
	return ch
}

// AfterFunc schedules fn to run (synchronously, inside Advance) when the
// simulated clock reaches now+d.
func (s *Sim) AfterFunc(d Duration, fn func(Time)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d < 0 {
		d = 0
	}
	s.seq++
	heap.Push(&s.waiters, &waiter{at: s.now.Add(d), seq: s.seq, fn: fn})
}

// Sleep blocks until the simulated clock has advanced by d. It only
// returns once another goroutine calls Advance far enough.
func (s *Sim) Sleep(d Duration) { <-s.After(d) }

// Advance moves simulated time forward by d, firing every waiter whose
// deadline falls inside the advanced span, in deadline order. Callbacks
// scheduled by fired callbacks also fire if they fall within the span.
func (s *Sim) Advance(d Duration) {
	if d < 0 {
		return
	}
	s.mu.Lock()
	target := s.now.Add(d)
	s.advanceTo(target)
	s.mu.Unlock()
}

// AdvanceTo moves simulated time forward to the absolute instant t
// (no-op when t is in the past).
func (s *Sim) AdvanceTo(t Time) {
	s.mu.Lock()
	s.advanceTo(t)
	s.mu.Unlock()
}

// advanceTo must be called with mu held.
func (s *Sim) advanceTo(target Time) {
	for len(s.waiters) > 0 && s.waiters[0].at <= target {
		w := heap.Pop(&s.waiters).(*waiter)
		if w.at > s.now {
			s.now = w.at
		}
		if w.ch != nil {
			w.ch <- s.now
		}
		if w.fn != nil {
			// Release the lock while running the callback so it can
			// schedule further timers.
			fn, at := w.fn, s.now
			s.mu.Unlock()
			fn(at)
			s.mu.Lock()
		}
	}
	if target > s.now {
		s.now = target
	}
}

// RunUntilIdle fires all pending waiters regardless of deadline, advancing
// time to each. It returns the number of waiters fired. Useful for
// draining a simulation to completion.
func (s *Sim) RunUntilIdle() int {
	fired := 0
	for {
		s.mu.Lock()
		if len(s.waiters) == 0 {
			s.mu.Unlock()
			return fired
		}
		next := s.waiters[0].at
		s.advanceTo(next)
		s.mu.Unlock()
		fired++
	}
}

// PendingWaiters reports how many timers are currently scheduled.
func (s *Sim) PendingWaiters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

// Jump moves the clock forward instantly WITHOUT firing intermediate
// waiters' callbacks at their precise deadlines — instead every waiter in
// the jumped-over span fires at the landing instant. This models a
// coarse clock discontinuity (e.g. a VM pause), used in failure-injection
// tests.
func (s *Sim) Jump(d Duration) {
	if d < 0 {
		return
	}
	s.mu.Lock()
	target := s.now.Add(d)
	s.now = target
	for len(s.waiters) > 0 && s.waiters[0].at <= target {
		w := heap.Pop(&s.waiters).(*waiter)
		if w.ch != nil {
			w.ch <- target
		}
		if w.fn != nil {
			fn := w.fn
			s.mu.Unlock()
			fn(target)
			s.mu.Lock()
		}
	}
	s.mu.Unlock()
}
