// Package consensus implements Chandra–Toueg rotating-coordinator
// consensus driven by the repository's failure detectors. The paper
// asserts (§IV-B) that SFD "belongs to the class ♦P_ac ... which is
// sufficient to solve the consensus problem"; this package demonstrates
// the claim executably: N simulated processes, each monitoring its peers
// with an SFD (or any detector.Detector), reach agreement despite
// crashes, using suspicion only to bypass dead coordinators.
//
// Algorithm (Chandra & Toueg 1996, ◇S + majority, crash-stop model,
// quasi-reliable channels):
//
//	round r, coordinator c = r mod n:
//	  phase 1: every process sends its (estimate, ts) to c.
//	  phase 2: c gathers a majority of estimates, adopts the one with
//	           the highest ts, and proposes it to all.
//	  phase 3: each process waits for c's proposal OR suspects c via its
//	           failure detector; it replies ACK (adopting the proposal,
//	           ts := r) or NACK, then moves to round r+1.
//	  phase 4: if c gathers a majority of ACKs it decides and reliably
//	           broadcasts the decision.
//
// Safety (agreement, validity) never depends on the detector; only
// termination does — exactly the unreliable-FD contract of the paper's
// reference [21].
package consensus

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/detector"
	"repro/internal/heartbeat"
	"repro/internal/netsim"
)

// msgKind discriminates consensus wire messages.
type msgKind uint8

const (
	kindEstimate msgKind = iota + 1
	kindPropose
	kindAck
	kindNack
	kindDecide
)

// message is the consensus wire format (JSON over simulated datagrams;
// consensus traffic is control-plane, so compactness is irrelevant).
type message struct {
	Kind  msgKind `json:"k"`
	From  int     `json:"f"`
	Round int     `json:"r"`
	Value string  `json:"v,omitempty"`
	TS    int     `json:"t"`
}

// phase of the per-process state machine.
type phase int

const (
	phaseEstimate phase = iota // need to send estimate to coordinator
	phaseWaitProposal
	phaseDone
)

// Process is one consensus participant. It owns a netsim node, a
// heartbeat beacon to its peers, and a failure-detector monitor over
// them.
type Process struct {
	id    int
	n     int
	names []string
	node  *netsim.Node
	clk   *clock.Sim
	mon   *cluster.Monitor

	estimate string
	ts       int
	round    int
	ph       phase

	decided  bool
	decision string
	crashed  bool

	// Coordinator bookkeeping for the round it currently coordinates.
	estimates map[int]message
	acks      map[int]bool
	nacks     map[int]bool
	proposed  bool

	// Heartbeat emission.
	hbSeq      uint64
	hbInterval clock.Duration

	// waitingSince marks entry into phaseWaitProposal: the grace-period
	// anchor for coordinators that never produced any heartbeat history.
	waitingSince clock.Time
	startAt      clock.Time
}

// Cluster is a set of consensus processes over one simulated network.
type Cluster struct {
	Clk   *clock.Sim
	Net   *netsim.Network
	Procs []*Process
}

// Options configures a consensus cluster.
type Options struct {
	N          int               // number of processes (≥ 3)
	Link       netsim.LinkParams // consensus + heartbeat links (should be loss-free for liveness)
	HBInterval clock.Duration    // heartbeat period (default 50 ms)
	Factory    cluster.Factory   // detector per peer (default: Chen with 4×HBInterval margin)
	Seed       int64
	// StartDelay postpones the consensus protocol (heartbeats flow from
	// t=0) so detectors build arrival history first — the paper's
	// warm-up discipline applied to the consensus layer.
	StartDelay clock.Duration
}

// New builds a consensus cluster. Every process heartbeats to every
// other and monitors every other with its own detector instance.
func New(opts Options) *Cluster {
	if opts.N < 3 {
		panic("consensus: need at least 3 processes")
	}
	if opts.HBInterval <= 0 {
		opts.HBInterval = 50 * clock.Millisecond
	}
	if opts.Factory == nil {
		hb := opts.HBInterval
		opts.Factory = func(string) detector.Detector {
			return detector.NewChen(20, hb, 4*hb)
		}
	}
	if opts.Link == (netsim.LinkParams{}) {
		opts.Link = netsim.LinkParams{
			DelayBase: 2 * clock.Millisecond, JitterMean: clock.Millisecond,
			JitterStd: clock.Millisecond,
		}
	}
	clk := clock.NewSim(0)
	net := netsim.New(clk, opts.Link, opts.Seed)

	c := &Cluster{Clk: clk, Net: net}
	names := make([]string, opts.N)
	for i := 0; i < opts.N; i++ {
		names[i] = fmt.Sprintf("p%d", i)
	}
	for i := 0; i < opts.N; i++ {
		p := &Process{
			id: i, n: opts.N, names: names,
			node: net.AddNode(names[i], 4096),
			clk:  clk,
			mon:  cluster.NewMonitor(clk, opts.Factory, cluster.Options{}),
			ts:   -1, hbInterval: opts.HBInterval,
			startAt:   clock.Time(opts.StartDelay),
			estimates: make(map[int]message),
			acks:      make(map[int]bool),
			nacks:     make(map[int]bool),
		}
		for j, name := range names {
			if j != i {
				p.mon.Watch(name)
			}
		}
		c.Procs = append(c.Procs, p)
	}
	return c
}

// Propose sets a process's initial value (its vote).
func (c *Cluster) Propose(id int, value string) {
	p := c.Procs[id]
	p.estimate = value
	p.ts = 0
}

// Crash stops a process permanently: no more heartbeats, no more
// consensus messages, inbox ignored.
func (c *Cluster) Crash(id int) { c.Procs[id].crashed = true }

// CrashAt schedules a crash after the given simulated delay — used to
// kill a process that has already heartbeated (so survivors' detectors
// have a history to suspect from, the paper's crash-stop scenario).
func (c *Cluster) CrashAt(id int, after clock.Duration) {
	c.Clk.AfterFunc(after, func(clock.Time) { c.Procs[id].crashed = true })
}

// coordinator of round r.
func coord(r, n int) int { return r % n }

// majority threshold.
func majority(n int) int { return n/2 + 1 }

func (p *Process) send(to int, m message) {
	if p.crashed {
		return
	}
	m.From = p.id
	buf, _ := json.Marshal(m)
	_ = p.node.Send(p.names[to], append([]byte{'C'}, buf...))
}

func (p *Process) broadcast(m message) {
	for j := 0; j < p.n; j++ {
		if j != p.id {
			p.send(j, m)
		}
	}
}

// pump advances the process: emit heartbeats on schedule (driven by the
// harness), drain the inbox, run the state machine.
func (p *Process) pump(now clock.Time) {
	if p.crashed {
		p.node.Drain() // discard; a crashed process does nothing
		return
	}
	for {
		in, ok := p.node.TryRecv()
		if !ok {
			break
		}
		if len(in.Payload) == 0 {
			continue
		}
		switch in.Payload[0] {
		case 'C':
			var m message
			if err := json.Unmarshal(in.Payload[1:], &m); err == nil {
				p.handle(m)
			}
		default:
			if hb, err := heartbeat.Unmarshal(in.Payload); err == nil && hb.Kind == heartbeat.KindHeartbeat {
				p.mon.Observe(heartbeat.Arrival{From: in.From, Seq: hb.Seq, Send: hb.Time, Recv: in.At})
			}
		}
	}
	p.step(now)
}

// emitHeartbeat broadcasts one liveness beacon.
func (p *Process) emitHeartbeat(now clock.Time) {
	if p.crashed {
		return
	}
	msg := heartbeat.Message{Kind: heartbeat.KindHeartbeat, Seq: p.hbSeq, Time: now}
	p.hbSeq++
	payload := msg.Marshal()
	for j, name := range p.names {
		if j != p.id {
			_ = p.node.Send(name, payload)
		}
	}
}

// handle processes one consensus message.
func (p *Process) handle(m message) {
	if p.decided {
		// Help laggards: answer anything with the decision.
		if m.Kind != kindDecide {
			p.send(m.From, message{Kind: kindDecide, Round: p.round, Value: p.decision})
		}
		return
	}
	switch m.Kind {
	case kindDecide:
		p.decide(m.Value)
	case kindEstimate:
		if m.Round >= p.round && coord(m.Round, p.n) == p.id {
			// Stash estimates per round; only the current round's
			// matter, keyed by sender (dedup).
			if m.Round == p.round {
				p.estimates[m.From] = m
			} else {
				// Future round: we lag; catch up.
				p.advanceTo(m.Round)
				p.estimates[m.From] = m
			}
		}
	case kindPropose:
		if m.Round == p.round && p.ph == phaseWaitProposal && coord(m.Round, p.n) == m.From {
			p.estimate, p.ts = m.Value, m.Round
			p.send(m.From, message{Kind: kindAck, Round: m.Round})
			p.nextRound()
		} else if m.Round > p.round {
			p.advanceTo(m.Round)
			p.estimate, p.ts = m.Value, m.Round
			p.send(m.From, message{Kind: kindAck, Round: m.Round})
			p.nextRound()
		}
	case kindAck:
		if coord(m.Round, p.n) == p.id {
			p.acks[m.From] = true
			p.tryDecideAsCoordinator(m.Round)
		}
	case kindNack:
		if coord(m.Round, p.n) == p.id {
			p.nacks[m.From] = true
		}
	}
}

// step runs the phase logic that is driven by time rather than messages.
func (p *Process) step(now clock.Time) {
	if p.decided || p.estimate == "" || now.Before(p.startAt) {
		return
	}
	switch p.ph {
	case phaseEstimate:
		c := coord(p.round, p.n)
		m := message{Kind: kindEstimate, Round: p.round, Value: p.estimate, TS: p.ts}
		if c == p.id {
			p.estimates[p.id] = message{Kind: kindEstimate, From: p.id, Round: p.round, Value: p.estimate, TS: p.ts}
		} else {
			p.send(c, m)
		}
		p.ph = phaseWaitProposal
		p.waitingSince = now

	case phaseWaitProposal:
		c := coord(p.round, p.n)
		if c == p.id {
			p.tryProposeAsCoordinator()
			p.tryDecideAsCoordinator(p.round)
			return
		}
		// Waiting on the coordinator: bail out if the FD suspects it.
		// A coordinator that never heartbeated at all (crashed before
		// its first beacon) stays StatusUnknown forever, so an unknown
		// peer is given a grace period and then treated as suspect —
		// the FD contract only promises *eventual* suspicion of crashed
		// processes.
		st, ok := p.mon.StatusOf(p.names[c], now)
		suspected := ok && st >= cluster.StatusSuspected
		if !suspected && st == cluster.StatusUnknown &&
			now.Sub(p.waitingSince) > 20*p.hbInterval {
			suspected = true
		}
		if suspected {
			p.send(c, message{Kind: kindNack, Round: p.round})
			p.nextRound()
		}
	}
}

// tryProposeAsCoordinator sends the proposal once a majority of
// estimates (including our own) arrived.
func (p *Process) tryProposeAsCoordinator() {
	if p.proposed || len(p.estimates) < majority(p.n) {
		return
	}
	// Adopt the estimate with the highest timestamp (CT's locking rule).
	best := message{TS: -2}
	ids := make([]int, 0, len(p.estimates))
	for id := range p.estimates {
		ids = append(ids, id)
	}
	sort.Ints(ids) // deterministic tie-break
	for _, id := range ids {
		if m := p.estimates[id]; m.TS > best.TS {
			best = m
		}
	}
	p.estimate, p.proposed = best.Value, true
	p.broadcast(message{Kind: kindPropose, Round: p.round, Value: p.estimate})
	// The coordinator adopts and acks its own proposal.
	p.ts = p.round
	p.acks[p.id] = true
}

// tryDecideAsCoordinator decides once a majority acked round r.
func (p *Process) tryDecideAsCoordinator(r int) {
	if p.decided || r != p.round || !p.proposed {
		return
	}
	count := 0
	for range p.acks {
		count++
	}
	if count >= majority(p.n) {
		v := p.estimate
		p.decide(v)
		p.broadcast(message{Kind: kindDecide, Round: r, Value: v})
		return
	}
	// A majority of nacks means this round is lost; move on.
	if len(p.nacks) >= majority(p.n) {
		p.nextRound()
	}
}

func (p *Process) decide(v string) {
	if p.decided {
		return
	}
	p.decided = true
	p.decision = v
	p.ph = phaseDone
	// Propagate once so non-coordinators' decisions spread too.
	p.broadcast(message{Kind: kindDecide, Round: p.round, Value: v})
}

func (p *Process) nextRound() { p.advanceTo(p.round + 1) }

func (p *Process) advanceTo(r int) {
	if r <= p.round {
		return
	}
	p.round = r
	p.ph = phaseEstimate
	p.estimates = make(map[int]message)
	p.acks = make(map[int]bool)
	p.nacks = make(map[int]bool)
	p.proposed = false
}

// Decided reports a process's decision.
func (p *Process) Decided() (string, bool) { return p.decision, p.decided }

// Round returns the process's current round (diagnostics).
func (p *Process) Round() int { return p.round }

// Run drives the cluster until every correct process has decided or
// maxTime elapses. It returns true when all correct processes decided.
func (c *Cluster) Run(maxTime clock.Duration) bool {
	const step = 5 * clock.Millisecond
	hbEvery := c.Procs[0].hbInterval
	nextHB := c.Clk.Now()
	deadline := c.Clk.Now().Add(maxTime)
	for c.Clk.Now().Before(deadline) {
		now := c.Clk.Now()
		if !now.Before(nextHB) {
			for _, p := range c.Procs {
				p.emitHeartbeat(now)
			}
			nextHB = now.Add(hbEvery)
		}
		c.Clk.Advance(step)
		done := true
		for _, p := range c.Procs {
			p.pump(c.Clk.Now())
			if !p.crashed && !p.decided {
				done = false
			}
		}
		if done {
			return true
		}
	}
	return false
}

// Agreement verifies that no two decided processes decided differently;
// it returns the decided value (empty if none decided).
func (c *Cluster) Agreement() (string, error) {
	var v string
	for _, p := range c.Procs {
		if d, ok := p.Decided(); ok {
			if v == "" {
				v = d
			} else if v != d {
				return "", fmt.Errorf("consensus: agreement violated: %q vs %q", v, d)
			}
		}
	}
	return v, nil
}
