package consensus

import (
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/netsim"
)

const msX = clock.Millisecond

func proposeAll(c *Cluster, values ...string) {
	for i, v := range values {
		c.Propose(i, v)
	}
}

func assertAgreementAndValidity(t *testing.T, c *Cluster, proposals []string) string {
	t.Helper()
	v, err := c.Agreement()
	if err != nil {
		t.Fatal(err)
	}
	if v == "" {
		t.Fatal("nobody decided")
	}
	valid := false
	for _, p := range proposals {
		if p == v {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("decision %q not among proposals %v", v, proposals)
	}
	return v
}

func TestConsensusNoCrash(t *testing.T) {
	c := New(Options{N: 5, Seed: 1})
	proposals := []string{"a", "b", "c", "d", "e"}
	proposeAll(c, proposals...)
	if !c.Run(30 * clock.Second) {
		t.Fatal("consensus did not terminate")
	}
	v := assertAgreementAndValidity(t, c, proposals)
	// Round-0 coordinator is p0; with no crashes its proposal should win
	// and everyone decides quickly.
	if v != "a" {
		t.Logf("decided %q (p0's proposal was a) — legal but unusual", v)
	}
	for i, p := range c.Procs {
		if _, ok := p.Decided(); !ok {
			t.Fatalf("p%d never decided", i)
		}
	}
}

func TestConsensusCoordinatorCrash(t *testing.T) {
	c := New(Options{N: 5, Seed: 2, StartDelay: 3 * clock.Second})
	proposals := []string{"a", "b", "c", "d", "e"}
	proposeAll(c, proposals...)
	c.CrashAt(0, clock.Second) // round-0 coordinator dies before the protocol starts
	if !c.Run(60 * clock.Second) {
		t.Fatal("consensus did not terminate after coordinator crash")
	}
	v := assertAgreementAndValidity(t, c, proposals)
	for i, p := range c.Procs {
		if i == 0 {
			continue
		}
		if d, ok := p.Decided(); !ok || d != v {
			t.Fatalf("p%d decision %q,%v; want %q", i, d, ok, v)
		}
	}
	// The crashed process must not have decided.
	if _, ok := c.Procs[0].Decided(); ok {
		t.Fatal("crashed process decided")
	}
}

func TestConsensusMinorityCrashes(t *testing.T) {
	// n=7 tolerates 3 crashes (majority 4).
	c := New(Options{N: 7, Seed: 3, StartDelay: 3 * clock.Second})
	var proposals []string
	for i := 0; i < 7; i++ {
		proposals = append(proposals, fmt.Sprintf("v%d", i))
	}
	proposeAll(c, proposals...)
	c.CrashAt(0, clock.Second)
	c.CrashAt(1, clock.Second)
	c.CrashAt(2, clock.Second) // three consecutive coordinators dead
	if !c.Run(120 * clock.Second) {
		t.Fatal("consensus did not terminate with 3 crashed coordinators")
	}
	assertAgreementAndValidity(t, c, proposals)
}

func TestConsensusSafetyUnderWrongSuspicions(t *testing.T) {
	// A recklessly aggressive detector (tiny margin) produces wrong
	// suspicions constantly; agreement and validity must still hold —
	// only termination may slow down (it shouldn't here: rounds rotate).
	factory := func(string) detector.Detector {
		return detector.NewChen(5, 50*msX, 0) // zero margin: flappy
	}
	c := New(Options{N: 5, Seed: 4, Factory: factory})
	proposals := []string{"a", "b", "c", "d", "e"}
	proposeAll(c, proposals...)
	if !c.Run(120 * clock.Second) {
		t.Fatal("consensus did not terminate under a flappy detector")
	}
	assertAgreementAndValidity(t, c, proposals)
}

func TestConsensusWithSFDDetector(t *testing.T) {
	// The headline claim: SFD (accrual, ◇P_ac) drives consensus.
	factory := func(string) detector.Detector {
		return core.New(core.Config{
			WindowSize: 20, Interval: 50 * msX, InitialMargin: 200 * msX,
		})
	}
	c := New(Options{N: 5, Seed: 5, Factory: factory, StartDelay: 5 * clock.Second})
	proposals := []string{"red", "green", "blue", "cyan", "teal"}
	proposeAll(c, proposals...)
	c.CrashAt(0, 3*clock.Second)
	if !c.Run(60 * clock.Second) {
		t.Fatal("SFD-driven consensus did not terminate")
	}
	assertAgreementAndValidity(t, c, proposals)
}

func TestConsensusDeterministic(t *testing.T) {
	run := func() (string, []int) {
		c := New(Options{N: 5, Seed: 9, StartDelay: 3 * clock.Second})
		proposeAll(c, "a", "b", "c", "d", "e")
		c.CrashAt(0, clock.Second)
		c.Run(60 * clock.Second)
		v, _ := c.Agreement()
		var rounds []int
		for _, p := range c.Procs {
			rounds = append(rounds, p.Round())
		}
		return v, rounds
	}
	v1, r1 := run()
	v2, r2 := run()
	if v1 != v2 {
		t.Fatalf("non-deterministic decision: %q vs %q", v1, v2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("non-deterministic rounds: %v vs %v", r1, r2)
		}
	}
}

func TestConsensusDelayOnlySlowsButDecides(t *testing.T) {
	c := New(Options{
		N:    5,
		Seed: 6,
		Link: netsim.LinkParams{
			DelayBase: 40 * msX, JitterMean: 10 * msX, JitterStd: 10 * msX,
		},
		HBInterval: 100 * msX,
		Factory: func(string) detector.Detector {
			return detector.NewChen(20, 100*msX, 400*msX)
		},
	})
	proposals := []string{"a", "b", "c", "d", "e"}
	proposeAll(c, proposals...)
	if !c.Run(60 * clock.Second) {
		t.Fatal("consensus did not terminate on a slow WAN")
	}
	assertAgreementAndValidity(t, c, proposals)
}

func TestConsensusTooFewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("N=2 did not panic")
		}
	}()
	New(Options{N: 2})
}

func TestConsensusQuorumHelpers(t *testing.T) {
	if majority(5) != 3 || majority(4) != 3 || majority(7) != 4 {
		t.Fatal("majority wrong")
	}
	if coord(0, 5) != 0 || coord(7, 5) != 2 {
		t.Fatal("coord wrong")
	}
}

func TestConsensusMonitorIntegration(t *testing.T) {
	// After a crash + run, the survivors' monitors classify the dead
	// process as suspected/offline, proving the FD layer (not a timeout
	// hack) drove round advancement.
	c := New(Options{N: 5, Seed: 7, StartDelay: 3 * clock.Second})
	proposeAll(c, "a", "b", "c", "d", "e")
	c.CrashAt(0, clock.Second)
	c.Run(60 * clock.Second)
	now := c.Clk.Now()
	st, ok := c.Procs[1].mon.StatusOf("p0", now)
	if !ok || st < cluster.StatusSuspected {
		t.Fatalf("survivor's monitor sees p0 as %v (ok=%v)", st, ok)
	}
}

func TestConsensusMajorityCrashNoTermination(t *testing.T) {
	// With a majority dead (3 of 5), consensus must NOT terminate — and
	// crucially must not violate agreement while stalled. This is the
	// safety/liveness split of the FD contract: an unreliable detector
	// can only cost liveness.
	c := New(Options{N: 5, Seed: 12, StartDelay: 3 * clock.Second})
	proposeAll(c, "a", "b", "c", "d", "e")
	c.CrashAt(0, clock.Second)
	c.CrashAt(1, clock.Second)
	c.CrashAt(2, clock.Second)
	if c.Run(30 * clock.Second) {
		t.Fatal("consensus terminated without a live majority")
	}
	if _, err := c.Agreement(); err != nil {
		t.Fatalf("agreement violated while stalled: %v", err)
	}
}

func TestConsensusLargerClusterManyCrashes(t *testing.T) {
	// n=9 tolerates 4 crashes (majority 5).
	c := New(Options{N: 9, Seed: 13, StartDelay: 3 * clock.Second})
	var proposals []string
	for i := 0; i < 9; i++ {
		proposals = append(proposals, fmt.Sprintf("w%d", i))
	}
	proposeAll(c, proposals...)
	for i := 0; i < 4; i++ {
		c.CrashAt(i, clock.Second)
	}
	if !c.Run(180 * clock.Second) {
		t.Fatal("9-process consensus did not survive 4 crashes")
	}
	assertAgreementAndValidity(t, c, proposals)
}

func TestConsensusUnanimousProposal(t *testing.T) {
	// Validity corner: when everyone proposes the same value, that value
	// is the only possible decision.
	c := New(Options{N: 5, Seed: 14})
	proposeAll(c, "only", "only", "only", "only", "only")
	if !c.Run(30 * clock.Second) {
		t.Fatal("did not terminate")
	}
	v, err := c.Agreement()
	if err != nil || v != "only" {
		t.Fatalf("decided %q, %v", v, err)
	}
}

func TestConsensusLateCrashAfterDecision(t *testing.T) {
	// A crash after the decision spreads must not disturb anything.
	c := New(Options{N: 5, Seed: 15})
	proposeAll(c, "a", "b", "c", "d", "e")
	if !c.Run(30 * clock.Second) {
		t.Fatal("did not terminate")
	}
	v1, _ := c.Agreement()
	c.Crash(2)
	c.Run(clock.Second) // extra spin
	v2, err := c.Agreement()
	if err != nil || v1 != v2 {
		t.Fatalf("post-decision crash changed outcome: %q vs %q (%v)", v1, v2, err)
	}
}
