package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram over [lo, hi) with overflow and
// underflow buckets. The trace analyzer uses it to characterise delay
// and inter-arrival distributions (Table II regeneration) and the bench
// harness uses it to render ASCII distribution sketches.
type Histogram struct {
	lo, hi  float64
	width   float64
	bins    []int64
	under   int64
	over    int64
	total   int64
	moments Welford
}

// NewHistogram returns a histogram with n equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), bins: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	h.moments.Add(x)
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.bins) { // guard against FP edge at hi
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// NumBins returns the number of interior bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Underflow and Overflow return the out-of-range counts.
func (h *Histogram) Underflow() int64 { return h.under }
func (h *Histogram) Overflow() int64  { return h.over }

// Mean returns the exact running mean of all observations.
func (h *Histogram) Mean() float64 { return h.moments.Mean() }

// StdDev returns the exact running standard deviation.
func (h *Histogram) StdDev() float64 { return h.moments.StdDev() }

// Quantile returns an interpolated quantile estimate from the binned
// counts, for q in [0,1]. Underflow mass is attributed to lo and overflow
// mass to hi.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.moments.Min()
	}
	if q >= 1 {
		return h.moments.Max()
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if target <= cum {
		return h.lo
	}
	for i, c := range h.bins {
		next := cum + float64(c)
		if target <= next && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum = next
	}
	return h.hi
}

// Sketch renders an ASCII sketch of the distribution, width columns wide,
// one row per bin with a proportional bar. Empty leading/trailing bins are
// trimmed.
func (h *Histogram) Sketch(width int) string {
	if width < 8 {
		width = 8
	}
	first, last := -1, -1
	var maxC int64
	for i, c := range h.bins {
		if c > 0 {
			if first < 0 {
				first = i
			}
			last = i
			if c > maxC {
				maxC = c
			}
		}
	}
	if first < 0 {
		return "(empty)\n"
	}
	var b strings.Builder
	for i := first; i <= last; i++ {
		barLen := int(float64(h.bins[i]) / float64(maxC) * float64(width))
		fmt.Fprintf(&b, "%12.6g │%s %d\n", h.lo+float64(i)*h.width,
			strings.Repeat("█", barLen), h.bins[i])
	}
	return b.String()
}

// Quantiles computes exact batch quantiles of xs (which it sorts in
// place) at the given fractions using linear interpolation.
func Quantiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrNoSamples
	}
	sort.Float64s(xs)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(xs, q)
	}
	return out, nil
}

func quantileSorted(xs []float64, q float64) float64 {
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	pos := q * float64(len(xs)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(xs) {
		return xs[len(xs)-1]
	}
	return xs[i]*(1-frac) + xs[i+1]*frac
}
