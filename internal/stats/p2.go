package stats

// P2Quantile is the Jain & Chlamtac P² streaming quantile estimator: it
// tracks a single quantile with O(1) memory and O(1) update cost, without
// storing samples. The cluster monitor uses it to expose tail detection
// latencies (p95/p99) without retaining per-event history.
type P2Quantile struct {
	p       float64
	q       [5]float64 // marker heights
	n       [5]int     // marker positions (1-based)
	np      [5]float64 // desired positions
	dn      [5]float64 // desired position increments
	count   int
	initBuf []float64
}

// NewP2Quantile returns an estimator for quantile p in (0,1).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("stats: P2 quantile must be in (0,1)")
	}
	return &P2Quantile{p: p, initBuf: make([]float64, 0, 5)}
}

// Add incorporates one observation.
func (e *P2Quantile) Add(x float64) {
	e.count++
	if len(e.initBuf) < 5 {
		// Insertion into the initial sorted buffer.
		i := len(e.initBuf)
		e.initBuf = append(e.initBuf, x)
		for i > 0 && e.initBuf[i-1] > e.initBuf[i] {
			e.initBuf[i-1], e.initBuf[i] = e.initBuf[i], e.initBuf[i-1]
			i--
		}
		if len(e.initBuf) == 5 {
			copy(e.q[:], e.initBuf)
			for i := range e.n {
				e.n[i] = i + 1
			}
			p := e.p
			e.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}

	// Find cell k such that q[k] <= x < q[k+1]; adjust extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := range e.np {
		e.np[i] += e.dn[i]
	}

	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - float64(e.n[i])
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			var di int
			if d >= 0 {
				di = 1
			} else {
				di = -1
			}
			qNew := e.parabolic(i, di)
			if e.q[i-1] < qNew && qNew < e.q[i+1] {
				e.q[i] = qNew
			} else {
				e.q[i] = e.linear(i, di)
			}
			e.n[i] += di
		}
	}
}

func (e *P2Quantile) parabolic(i, d int) float64 {
	qi, qm, qp := e.q[i], e.q[i-1], e.q[i+1]
	ni, nm, np := float64(e.n[i]), float64(e.n[i-1]), float64(e.n[i+1])
	df := float64(d)
	return qi + df/(np-nm)*((ni-nm+df)*(qp-qi)/(np-ni)+(np-ni-df)*(qi-qm)/(ni-nm))
}

func (e *P2Quantile) linear(i, d int) float64 {
	return e.q[i] + float64(d)*(e.q[i+d]-e.q[i])/float64(e.n[i+d]-e.n[i])
}

// Value returns the current quantile estimate. Before 5 samples it falls
// back to the exact small-sample quantile.
func (e *P2Quantile) Value() float64 {
	if len(e.initBuf) < 5 {
		if len(e.initBuf) == 0 {
			return 0
		}
		cp := make([]float64, len(e.initBuf))
		copy(cp, e.initBuf)
		return quantileSorted(cp, e.p)
	}
	return e.q[2]
}

// Count returns the number of observations.
func (e *P2Quantile) Count() int { return e.count }
