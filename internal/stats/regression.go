package stats

// LinearFit holds the result of an ordinary-least-squares fit y = a + b·x.
// The trace analyzer fits heartbeat arrival times against sequence numbers
// to quantify clock drift (the paper notes WAN-1's receive mean of
// 12.83 ms vs send mean 12.825 ms "showing a slight clock drift").
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
	N         int
}

// FitLine performs OLS on the paired samples. It returns ErrNoSamples for
// fewer than two points and a zero-slope fit when x has no variance.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, ErrNoSamples
	}
	n := len(xs)
	if n < 2 {
		return LinearFit{}, ErrNoSamples
	}
	var sx, sy Welford
	for i := 0; i < n; i++ {
		sx.Add(xs[i])
		sy.Add(ys[i])
	}
	mx, my := sx.Mean(), sy.Mean()
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	fit := LinearFit{N: n}
	if sxx == 0 {
		fit.Intercept = my
		return fit, nil
	}
	fit.Slope = sxy / sxx
	fit.Intercept = my - fit.Slope*mx
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// Autocorrelation returns the lag-k autocorrelation of xs, used by the
// trace analyzer to verify that generated burst-loss patterns exhibit the
// temporal correlation real WAN loss shows (as opposed to Bernoulli
// losses, which are memoryless).
func Autocorrelation(xs []float64, lag int) (float64, error) {
	n := len(xs)
	if n == 0 || lag < 0 || lag >= n {
		return 0, ErrNoSamples
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	mu := w.Mean()
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mu
		den += d * d
		if i+lag < n {
			num += d * (xs[i+lag] - mu)
		}
	}
	if den == 0 {
		return 0, nil
	}
	return num / den, nil
}
