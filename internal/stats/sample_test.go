package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSampleGammaMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cases := []struct{ mean, std float64 }{
		{100, 10},  // shape 100 — near-normal
		{100, 100}, // shape 1 — exponential
		{100, 300}, // shape 1/9 — boost path
		{12.8, 13}, // the WAN-1 send-interval regime
	}
	for _, c := range cases {
		var w Welford
		for i := 0; i < 200_000; i++ {
			x := SampleGamma(rng, c.mean, c.std)
			if x < 0 {
				t.Fatalf("negative gamma sample %v", x)
			}
			w.Add(x)
		}
		if math.Abs(w.Mean()-c.mean) > 0.05*c.mean {
			t.Errorf("mean(%v,%v) = %v", c.mean, c.std, w.Mean())
		}
		if math.Abs(w.StdDev()-c.std) > 0.1*c.std {
			t.Errorf("std(%v,%v) = %v", c.mean, c.std, w.StdDev())
		}
	}
}

func TestSampleGammaDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if SampleGamma(rng, 0, 5) != 0 {
		t.Fatal("zero mean should sample 0")
	}
	if SampleGamma(rng, -3, 5) != 0 {
		t.Fatal("negative mean should sample 0")
	}
	if SampleGamma(rng, 7, 0) != 7 {
		t.Fatal("zero std should sample the mean")
	}
}

func TestGilbertElliottStationaryLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, c := range []struct{ loss, burst float64 }{
		{0.05, 1}, {0.05, 10}, {0.2, 3}, {0.004, 28.5},
	} {
		ge := NewGilbertElliott(c.loss, c.burst)
		dropped := 0
		const n = 500_000
		for i := 0; i < n; i++ {
			if ge.Drop(rng) {
				dropped++
			}
		}
		got := float64(dropped) / n
		if math.Abs(got-c.loss) > 0.25*c.loss+0.001 {
			t.Errorf("loss(%v,%v) = %v", c.loss, c.burst, got)
		}
	}
}

func TestGilbertElliottBurstLength(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ge := NewGilbertElliott(0.1, 8)
	runs, runLen, losses := 0, 0, 0
	for i := 0; i < 500_000; i++ {
		if ge.Drop(rng) {
			losses++
			runLen++
		} else if runLen > 0 {
			runs++
			runLen = 0
		}
	}
	if runs == 0 {
		t.Fatal("no loss runs")
	}
	meanBurst := float64(losses) / float64(runs)
	if meanBurst < 6 || meanBurst > 10 {
		t.Fatalf("mean burst = %v, want ≈8", meanBurst)
	}
}

func TestGilbertElliottEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	never := NewGilbertElliott(0, 5)
	for i := 0; i < 1000; i++ {
		if never.Drop(rng) {
			t.Fatal("lossless channel dropped")
		}
	}
	if never.InBurst() {
		t.Fatal("lossless channel in burst")
	}
	always := NewGilbertElliott(1, 5)
	drops := 0
	for i := 0; i < 1000; i++ {
		if always.Drop(rng) {
			drops++
		}
	}
	if drops < 999 { // first event may enter the bad state
		t.Fatalf("total-loss channel dropped only %d/1000", drops)
	}
}

func BenchmarkSampleGamma(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SampleGamma(rng, 12.8, 13.0)
	}
}
