package stats

import (
	"math"
	"math/rand"
)

// SampleGamma draws from a Gamma distribution parameterized by mean and
// standard deviation (shape (m/s)², scale s²/m) using Marsaglia–Tsang,
// with the Kundu–Gupta boost for shape < 1. A zero std degenerates to the
// constant mean. The trace generator and the network simulator share this
// sampler so a simulated link and a synthetic trace with equal parameters
// produce statistically identical delay processes.
func SampleGamma(rng *rand.Rand, mean, std float64) float64 {
	if mean <= 0 {
		return 0
	}
	if std <= 0 {
		return mean
	}
	shape := (mean / std) * (mean / std)
	scale := std * std / mean
	return sampleGammaShape(rng, shape) * scale
}

func sampleGammaShape(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		// Boost: Gamma(k) = Gamma(k+1) · U^(1/k).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return sampleGammaShape(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u == 0 {
			continue
		}
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// GilbertElliott is the two-state burst-loss channel model shared by the
// trace generator and the network simulator: Good delivers, Bad drops.
// Calibrated so the stationary loss fraction is lossRate and the mean
// sojourn in Bad is meanBurst events.
type GilbertElliott struct {
	pGB, pBG float64
	bad      bool
}

// NewGilbertElliott calibrates the chain. lossRate ≤ 0 yields a channel
// that never drops; meanBurst < 1 is treated as 1 (memoryless/Bernoulli).
func NewGilbertElliott(lossRate, meanBurst float64) *GilbertElliott {
	g := &GilbertElliott{}
	if lossRate > 0 && lossRate < 1 {
		if meanBurst < 1 {
			meanBurst = 1
		}
		g.pBG = 1 / meanBurst
		g.pGB = lossRate * g.pBG / (1 - lossRate)
		if g.pGB > 1 {
			g.pGB = 1
		}
	} else if lossRate >= 1 {
		g.pGB, g.pBG = 1, 0
	}
	return g
}

// Drop advances the chain one event and reports whether it is lost.
func (g *GilbertElliott) Drop(rng *rand.Rand) bool {
	if g.pGB == 0 && !g.bad {
		return false
	}
	if g.bad {
		if rng.Float64() < g.pBG {
			g.bad = false
			return false
		}
		return true
	}
	if rng.Float64() < g.pGB {
		g.bad = true
		return true
	}
	return false
}

// InBurst reports whether the channel is currently in the Bad state.
func (g *GilbertElliott) InBurst() bool { return g.bad }
