package stats

import "math"

// Normal distribution functions. The φ accrual detector (Eq. 9–10 of the
// paper) needs the tail probability P_later(t) = 1 − F(t) of a normal
// distribution fitted to the inter-arrival window, evaluated far into the
// tail, and its inverse to translate a threshold Φ back into an effective
// timeout for replay evaluation. erfc keeps the tail accurate where the
// naive 1−Φ(x) underflows — the "rounding errors" the paper blames for
// the φ FD's early curve cutoff.

// NormalCDF returns F(x) for N(mu, sigma²). Sigma must be > 0.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		// Degenerate distribution: point mass at mu.
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// NormalTail returns P(X > x) = 1 − F(x) for N(mu, sigma²), computed via
// erfc so that deep-tail values remain accurate.
func NormalTail(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 1
		}
		return 0
	}
	return 0.5 * math.Erfc((x-mu)/(sigma*math.Sqrt2))
}

// NormalQuantile returns the quantile function Φ⁻¹(p) of the standard
// normal distribution using the Acklam rational approximation refined by
// one step of Halley's method; absolute error is below 1e-13 across
// p ∈ (0,1).
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}

	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		plow  = 0.02425
		phigh = 1 - plow
	)

	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}

	// One Halley refinement using the CDF residual.
	e := NormalCDF(x, 0, 1) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// Phi returns the accrual suspicion level of Eq. 9:
// φ(t) = −log10(P_later(t)) under N(mu, sigma²), where t is the elapsed
// time since the last heartbeat arrival. The result is clamped to
// PhiMax to keep downstream arithmetic finite once the tail probability
// underflows float64 entirely (t extremely far past the window mean).
func Phi(t, mu, sigma float64) float64 {
	p := NormalTail(t, mu, sigma)
	if p <= 0 {
		return PhiMax
	}
	phi := -math.Log10(p)
	if phi < 0 {
		phi = 0
	}
	if phi > PhiMax {
		phi = PhiMax
	}
	return phi
}

// PhiMax caps the reported suspicion level. float64's erfc underflows to
// 0 around 3.1e-308 (φ ≈ 307.6); any value above a few hundred carries no
// additional information.
const PhiMax = 300.0

// PhiInverse returns the elapsed time t at which the suspicion level
// reaches threshold under N(mu, sigma²):
// t = mu + sigma·Φ⁻¹(1 − 10^−threshold).
// Replay evaluation uses this to convert a Φ threshold into the
// effective freshness point the φ FD implies.
func PhiInverse(threshold, mu, sigma float64) float64 {
	if threshold <= 0 {
		return mu
	}
	p := math.Pow(10, -threshold)
	// 1−p collapses to 1 below ~1e-16: emulate the original lookup-based
	// implementation's conservative-range breakdown by solving in the
	// complementary tail instead (still finite thanks to erfc's range,
	// mirrored quantile: Φ⁻¹(1−p) = −Φ⁻¹(p)).
	z := -NormalQuantile(p)
	return mu + sigma*z
}
