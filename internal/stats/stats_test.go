package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Fatal("empty Welford not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	if !almostEqual(w.Variance(), 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", w.Variance())
	}
	if !almostEqual(w.StdDev(), 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", w.StdDev())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordSampleVariance(t *testing.T) {
	var w Welford
	for _, x := range []float64{1, 2, 3} {
		w.Add(x)
	}
	if !almostEqual(w.SampleVariance(), 1, 1e-12) {
		t.Fatalf("SampleVariance = %v, want 1", w.SampleVariance())
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(5)
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestWelfordMatchesNaiveProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		var w Welford
		var sum float64
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(xs))
		return almostEqual(w.Mean(), mean, 1e-8*(1+math.Abs(mean))) &&
			almostEqual(w.Variance(), naiveVar, 1e-6*(1+naiveVar))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEqualsSequentialProperty(t *testing.T) {
	f := func(a, b []int16) bool {
		var all, wa, wb Welford
		for _, v := range a {
			all.Add(float64(v))
			wa.Add(float64(v))
		}
		for _, v := range b {
			all.Add(float64(v))
			wb.Add(float64(v))
		}
		wa.Merge(wb)
		return wa.N() == all.N() &&
			almostEqual(wa.Mean(), all.Mean(), 1e-8*(1+math.Abs(all.Mean()))) &&
			almostEqual(wa.Variance(), all.Variance(), 1e-6*(1+all.Variance())) &&
			wa.Min() == all.Min() && wa.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdDevBatch(t *testing.T) {
	if _, err := Mean(nil); err != ErrNoSamples {
		t.Fatal("Mean(nil) should error")
	}
	if _, err := StdDev(nil); err != ErrNoSamples {
		t.Fatal("StdDev(nil) should error")
	}
	m, err := Mean([]float64{1, 2, 3})
	if err != nil || m != 2 {
		t.Fatalf("Mean = %v, %v", m, err)
	}
	s, err := StdDev([]float64{1, 1, 1})
	if err != nil || s != 0 {
		t.Fatalf("StdDev = %v, %v", s, err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA claims initialized")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first Add should seed: %v", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Fatalf("Value = %v, want 15", e.Value())
	}
	e.Set(100)
	if e.Value() != 100 {
		t.Fatal("Set did not override")
	}
}

func TestEWMAInvalidGainPanics(t *testing.T) {
	for _, g := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("gain %v did not panic", g)
				}
			}()
			NewEWMA(g)
		}()
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.1)
	for i := 0; i < 500; i++ {
		e.Add(42)
	}
	if !almostEqual(e.Value(), 42, 1e-9) {
		t.Fatalf("EWMA did not converge: %v", e.Value())
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, mu, sigma, want float64 }{
		{0, 0, 1, 0.5},
		{1.959963984540054, 0, 1, 0.975},
		{-1.959963984540054, 0, 1, 0.025},
		{10, 10, 5, 0.5},
		{15, 10, 5, 0.8413447460685429},
	}
	for _, c := range cases {
		got := NormalCDF(c.x, c.mu, c.sigma)
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("NormalCDF(%v,%v,%v) = %v, want %v", c.x, c.mu, c.sigma, got, c.want)
		}
	}
}

func TestNormalCDFDegenerate(t *testing.T) {
	if NormalCDF(1, 2, 0) != 0 || NormalCDF(3, 2, 0) != 1 || NormalCDF(2, 2, 0) != 1 {
		t.Fatal("degenerate CDF wrong")
	}
	if NormalTail(1, 2, 0) != 1 || NormalTail(3, 2, 0) != 0 {
		t.Fatal("degenerate tail wrong")
	}
}

func TestNormalCDFMonotoneSymmetricProperty(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := float64(a)/1000, float64(b)/1000
		if x > y {
			x, y = y, x
		}
		cx, cy := NormalCDF(x, 0, 1), NormalCDF(y, 0, 1)
		if cx > cy+1e-15 {
			return false
		}
		// symmetry: F(x) + F(-x) = 1
		return almostEqual(NormalCDF(x, 0, 1)+NormalCDF(-x, 0, 1), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalTailDeepAccuracy(t *testing.T) {
	// At x=10σ the tail is ~7.6e-24; the naive 1−CDF would return 0.
	tail := NormalTail(10, 0, 1)
	if tail <= 0 || tail > 1e-20 {
		t.Fatalf("deep tail = %v, want ~7.6e-24", tail)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-6, 0.001, 0.025, 0.5, 0.8, 0.975, 0.999999} {
		x := NormalQuantile(p)
		back := NormalCDF(x, 0, 1)
		if !almostEqual(back, p, 1e-10*(1+1/p)) && !almostEqual(back, p, 1e-12) {
			t.Errorf("quantile round-trip p=%v: x=%v back=%v", p, x, back)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("quantile endpoints wrong")
	}
	if !math.IsNaN(NormalQuantile(-0.5)) || !math.IsNaN(NormalQuantile(2)) {
		t.Fatal("out-of-range quantile should be NaN")
	}
}

func TestPhiBehaviour(t *testing.T) {
	// At the mean, P_later = 0.5 so φ = log10(2) ≈ 0.301.
	got := Phi(100, 100, 10)
	if !almostEqual(got, math.Log10(2), 1e-9) {
		t.Fatalf("Phi at mean = %v, want %v", got, math.Log10(2))
	}
	// φ is nondecreasing in t.
	prev := -1.0
	for tt := 0.0; tt < 300; tt += 5 {
		p := Phi(tt, 100, 10)
		if p < prev-1e-12 {
			t.Fatalf("Phi not monotone at t=%v", tt)
		}
		prev = p
	}
	// Extremely late heartbeat: clamped.
	if Phi(1e9, 100, 10) != PhiMax {
		t.Fatal("Phi not clamped at PhiMax")
	}
	// Early times give φ ≈ 0 but never negative.
	if Phi(0, 100, 10) < 0 {
		t.Fatal("Phi negative")
	}
}

func TestPhiInverseRoundTrip(t *testing.T) {
	mu, sigma := 100.0, 12.0
	for _, thr := range []float64{0.5, 1, 2, 4, 8, 12, 16} {
		tt := PhiInverse(thr, mu, sigma)
		back := Phi(tt, mu, sigma)
		if !almostEqual(back, thr, 1e-6*(1+thr)) {
			t.Errorf("PhiInverse round-trip thr=%v: t=%v back=%v", thr, tt, back)
		}
	}
	if PhiInverse(0, 5, 1) != 5 {
		t.Fatal("threshold 0 should give the mean")
	}
}

func TestPhiInverseMonotoneInThreshold(t *testing.T) {
	prev := math.Inf(-1)
	for thr := 0.5; thr <= 16; thr += 0.5 {
		v := PhiInverse(thr, 100, 10)
		if v <= prev {
			t.Fatalf("PhiInverse not strictly increasing at thr=%v", thr)
		}
		prev = v
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)  // underflow
	h.Add(100) // overflow
	if h.Total() != 12 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Fatal("under/overflow wrong")
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 1 {
			t.Fatalf("bin %d = %d, want 1", i, h.Bin(i))
		}
	}
	if h.NumBins() != 10 {
		t.Fatal("NumBins wrong")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median = %v, want ~50", med)
	}
	if h.Quantile(0) != h.moments.Min() || h.Quantile(1) != h.moments.Max() {
		t.Fatal("quantile endpoints wrong")
	}
}

func TestHistogramSketch(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if h.Sketch(20) != "(empty)\n" {
		t.Fatal("empty sketch wrong")
	}
	h.Add(1)
	h.Add(1)
	h.Add(7)
	s := h.Sketch(20)
	if len(s) == 0 {
		t.Fatal("sketch empty for nonempty histogram")
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestQuantilesBatch(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	qs, err := Quantiles(xs, 0, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] != 1 || qs[1] != 5 || qs[2] != 9 {
		t.Fatalf("quantiles = %v", qs)
	}
	if _, err := Quantiles(nil, 0.5); err != ErrNoSamples {
		t.Fatal("empty Quantiles should error")
	}
}

func TestP2QuantileSmallSampleExact(t *testing.T) {
	e := NewP2Quantile(0.5)
	if e.Value() != 0 {
		t.Fatal("empty P2 should return 0")
	}
	e.Add(3)
	e.Add(1)
	e.Add(2)
	if e.Value() != 2 {
		t.Fatalf("small-sample median = %v, want 2", e.Value())
	}
	if e.Count() != 3 {
		t.Fatal("Count wrong")
	}
}

func TestP2QuantileConvergesOnUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []float64{0.5, 0.9, 0.99} {
		e := NewP2Quantile(p)
		for i := 0; i < 50000; i++ {
			e.Add(rng.Float64() * 100)
		}
		want := p * 100
		if math.Abs(e.Value()-want) > 2.5 {
			t.Errorf("P2(%v) = %v, want ~%v", p, e.Value(), want)
		}
	}
}

func TestP2QuantileConvergesOnNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewP2Quantile(0.95)
	for i := 0; i < 100000; i++ {
		e.Add(rng.NormFloat64()*10 + 50)
	}
	want := 50 + 10*NormalQuantile(0.95)
	if math.Abs(e.Value()-want) > 1.0 {
		t.Fatalf("P2 p95 = %v, want ~%v", e.Value(), want)
	}
}

func TestP2InvalidPanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("p=%v did not panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

func TestP2BoundedByMinMaxProperty(t *testing.T) {
	f := func(raw []int16, pSel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := 0.1 + 0.8*float64(pSel)/255
		e := NewP2Quantile(p)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			x := float64(v)
			e.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		v := e.Value()
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFitLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
	if !almostEqual(fit.Predict(10), 21, 1e-12) {
		t.Fatal("Predict wrong")
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{2}); err != ErrNoSamples {
		t.Fatal("single point should error")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err != ErrNoSamples {
		t.Fatal("mismatched lengths should error")
	}
	fit, err := FitLine([]float64{5, 5, 5}, []float64{1, 2, 3})
	if err != nil || fit.Slope != 0 || fit.Intercept != 2 {
		t.Fatalf("zero-variance x fit = %+v, %v", fit, err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// Constant series: zero denominator → 0.
	if r, _ := Autocorrelation([]float64{3, 3, 3}, 1); r != 0 {
		t.Fatal("constant series autocorrelation should be 0")
	}
	// Lag 0 of any non-constant series is 1.
	r, err := Autocorrelation([]float64{1, 2, 3, 4}, 0)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("lag-0 = %v, %v", r, err)
	}
	// Alternating series has strongly negative lag-1 autocorrelation.
	alt := make([]float64, 100)
	for i := range alt {
		alt[i] = float64(i % 2)
	}
	r, _ = Autocorrelation(alt, 1)
	if r > -0.9 {
		t.Fatalf("alternating lag-1 = %v, want ~-1", r)
	}
	if _, err := Autocorrelation(nil, 0); err != ErrNoSamples {
		t.Fatal("empty should error")
	}
	if _, err := Autocorrelation([]float64{1, 2}, 5); err != ErrNoSamples {
		t.Fatal("lag >= n should error")
	}
}
