// Package stats provides the streaming and batch statistics used by the
// failure detectors and the QoS evaluation harness: numerically stable
// moment accumulators (Welford), exponentially weighted moving averages
// (the building block of Bertier's Jacobson-style estimator), normal
// distribution functions (the heart of the φ accrual detector), fixed-bin
// histograms, the P² streaming quantile estimator, and simple linear
// regression (used for clock-drift estimation in trace analysis).
package stats

import (
	"errors"
	"math"
)

// ErrNoSamples is returned by batch helpers when given an empty slice.
var ErrNoSamples = errors.New("stats: no samples")

// Welford accumulates count, mean and variance in a single pass using
// Welford's numerically stable recurrence.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 for fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the Bessel-corrected variance.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }

// Merge folds another accumulator into w (Chan et al. parallel variant),
// so partial statistics computed by concurrent workers can be combined.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoSamples
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Mean(), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoSamples
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.StdDev(), nil
}

// EWMA is an exponentially weighted moving average with gain g:
// v ← v + g·(x − v). Bertier's delay/var estimators (Eq. 5–6 of the
// paper) are two EWMAs with γ = 0.1.
type EWMA struct {
	gain  float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given gain in (0,1].
func NewEWMA(gain float64) *EWMA {
	if gain <= 0 || gain > 1 {
		panic("stats: EWMA gain must be in (0,1]")
	}
	return &EWMA{gain: gain}
}

// Add folds in an observation. The first observation initializes the
// average directly.
func (e *EWMA) Add(x float64) {
	if !e.init {
		e.value, e.init = x, true
		return
	}
	e.value += e.gain * (x - e.value)
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation was added.
func (e *EWMA) Initialized() bool { return e.init }

// Set forces the current value (used to seed estimators).
func (e *EWMA) Set(x float64) { e.value, e.init = x, true }
