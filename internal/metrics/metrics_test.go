package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	s := NewSet()
	c := s.Counter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	g := s.Gauge("g", "")
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Fatalf("gauge = %v, want -2.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	s := NewSet()
	h := s.Histogram("h_seconds", "", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 2.565; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Cumulative buckets: ≤0.01 holds two (0.005 and the boundary 0.01).
	for _, want := range []string{
		`h_seconds_bucket{le="0.01"} 2`,
		`h_seconds_bucket{le="0.1"} 3`,
		`h_seconds_bucket{le="1"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_sum 2.565`,
		`h_seconds_count 5`,
		`# TYPE h_seconds histogram`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNameEscaping(t *testing.T) {
	got := Name("m", "peer", "a\\b\"c\nd")
	want := `m{peer="a\\b\"c\nd"}`
	if got != want {
		t.Fatalf("Name = %s, want %s", got, want)
	}
	if Name("bare") != "bare" {
		t.Fatal("bare name altered")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	s := NewSet()
	s.Counter("dup", "")
	s.Counter("dup", "")
}

// TestExpositionGolden locks the full text format: stable ordering across
// families and series, label escaping, counter/gauge rendering, histogram
// bucket format, and sampled series interleaved with static ones.
func TestExpositionGolden(t *testing.T) {
	s := NewSet()
	c := s.Counter("zz_last_total", "registered last, sorted first by name rules")
	c.Add(7)
	s.CounterFunc("aa_first_total", "a counter func", func() uint64 { return 3 })
	g := s.Gauge(Name("mid_gauge", "peer", `pe"er\1`), "labeled gauge")
	g.Set(1.5)
	h := s.Histogram(Name("lat_seconds", "path", "ingest"), "labeled histogram", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	s.Sampled(func(e *Emitter) {
		e.Gauge(Name("mid_gauge", "peer", "b"), 2)
		e.Counter("sampled_total", 9)
	})

	want := `# HELP aa_first_total a counter func
# TYPE aa_first_total counter
aa_first_total 3
# HELP lat_seconds labeled histogram
# TYPE lat_seconds histogram
lat_seconds_bucket{path="ingest",le="0.001"} 1
lat_seconds_bucket{path="ingest",le="0.01"} 2
lat_seconds_bucket{path="ingest",le="+Inf"} 2
lat_seconds_sum{path="ingest"} 0.0055
lat_seconds_count{path="ingest"} 2
# HELP mid_gauge labeled gauge
# TYPE mid_gauge gauge
mid_gauge{peer="b"} 2
mid_gauge{peer="pe\"er\\1"} 1.5
# TYPE sampled_total counter
sampled_total 9
# HELP zz_last_total registered last, sorted first by name rules
# TYPE zz_last_total counter
zz_last_total 7
`
	for i := 0; i < 3; i++ { // stable across repeated scrapes
		var b strings.Builder
		if err := s.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if b.String() != want {
			t.Fatalf("scrape %d mismatch:\n got:\n%s\nwant:\n%s", i, b.String(), want)
		}
	}
}

func TestHandler(t *testing.T) {
	s := NewSet()
	s.Counter("x_total", "").Inc()
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "x_total 1\n") {
		t.Fatalf("body = %q", rr.Body.String())
	}
}

// TestConcurrentScrapeStress hammers counters, gauges, and a histogram
// from writer goroutines (standing in for the receiver and registry
// ingest paths) while scraper goroutines render the set — the -race
// coverage the ISSUE asks for.
func TestConcurrentScrapeStress(t *testing.T) {
	s := NewSet()
	c := s.Counter("stress_total", "")
	g := s.Gauge("stress_gauge", "")
	h := s.Histogram("stress_seconds", "", nil)
	s.Sampled(func(e *Emitter) { e.Gauge("stress_sampled", float64(c.Value())) })

	const writers, scrapers, iters = 4, 2, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%100) * 1e-4)
			}
		}(w)
	}
	for r := 0; r < scrapers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var b strings.Builder
				if err := s.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != writers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), writers*iters)
	}
	if h.Count() != writers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), writers*iters)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	s := NewSet()
	c := s.Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	s := NewSet()
	h := s.Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}
