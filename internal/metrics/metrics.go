// Package metrics is a small, dependency-free instrumentation layer for
// the monitoring pipeline: atomic counters, gauges, and fixed-bucket
// latency histograms registered by name in a Set, exposed in the
// Prometheus text format. The paper's thesis is that a failure detector
// must be judged by its *measured* output QoS (Fig. 3: TD, MR, QAP);
// this package is how a live deployment watches those numbers — and the
// hot-path cost of producing them — continuously, the way Dobre et al.
// and Cotroneo et al. treat metric exposition as a first-class part of a
// large-scale detection architecture.
//
// Design constraints, in order:
//
//  1. Hot-path updates (Counter.Add, Gauge.Set, Histogram.Observe) are
//     single atomic operations: no locks, no allocation, safe from any
//     goroutine. Proven by BenchmarkRegistryIngest staying at
//     0 allocs/op with the registry fully instrumented.
//  2. Scrapes may allocate freely; they sort every series so the
//     exposition is byte-stable for identical state (golden-testable).
//  3. Dynamic label sets (per-stream QoS gauges for a churning fleet)
//     are produced at scrape time by sampler callbacks, so the ingest
//     path never touches a map or a label string.
package metrics

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomically settable float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Observations and
// bucket bounds are in seconds for latency histograms (the Prometheus
// convention), but any unit works as long as producer and reader agree.
type Histogram struct {
	upper  []float64 // ascending bucket upper bounds; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefLatencyBuckets spans 1 µs – 1 s in a 1-2.5-5 progression: wide
// enough for a UDP decode (~µs) and a full scrape (~ms) alike.
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1,
}

func newHistogram(upper []float64) *Histogram {
	u := append([]float64(nil), upper...)
	sort.Float64s(u)
	return &Histogram{upper: u, counts: make([]atomic.Uint64, len(u)+1)}
}

// Observe records one value: one atomic add on the matching bucket, one
// on the total count, and a CAS loop folding v into the sum. No locks,
// no allocation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Emitter receives scrape-time samples from sampler callbacks (see
// Set.Sampled). Emitted names may carry labels built with Name.
type Emitter struct{ points []point }

// Gauge emits one gauge sample.
func (e *Emitter) Gauge(name string, v float64) {
	e.points = append(e.points, point{name: name, kind: kindGauge, value: v})
}

// Counter emits one monotonic counter sample (a reading of a counter the
// emitting subsystem maintains itself).
func (e *Emitter) Counter(name string, v float64) {
	e.points = append(e.points, point{name: name, kind: kindCounter, value: v})
}

const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindHist    = "histogram"
)

// point is one registered instrument or emitted sample.
type point struct {
	name string // full series name, labels included
	kind string
	help string

	value   float64 // sampled / gauge-func value
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cfn     func() uint64
	gfn     func() float64
}

// Set is a named collection of instruments plus sampler callbacks,
// exposed together as one Prometheus text page. Registration is
// synchronized; the instruments themselves are lock-free.
type Set struct {
	mu       sync.Mutex
	static   []point
	samplers []func(*Emitter)
	seen     map[string]bool
}

// NewSet returns an empty instrument set.
func NewSet() *Set { return &Set{seen: make(map[string]bool)} }

func (s *Set) register(p point) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen[p.name] {
		panic("metrics: duplicate registration of " + p.name)
	}
	s.seen[p.name] = true
	s.static = append(s.static, p)
}

// Counter registers and returns a new counter. name may carry labels
// (use Name); help may be empty.
func (s *Set) Counter(name, help string) *Counter {
	c := &Counter{}
	s.register(point{name: name, kind: kindCounter, help: help, counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for subsystems that already maintain their own atomic counters.
func (s *Set) CounterFunc(name, help string, fn func() uint64) {
	s.register(point{name: name, kind: kindCounter, help: help, cfn: fn})
}

// Gauge registers and returns a new settable gauge.
func (s *Set) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	s.register(point{name: name, kind: kindGauge, help: help, gauge: g})
	return g
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (s *Set) GaugeFunc(name, help string, fn func() float64) {
	s.register(point{name: name, kind: kindGauge, help: help, gfn: fn})
}

// Histogram registers and returns a fixed-bucket histogram; nil buckets
// take DefLatencyBuckets.
func (s *Set) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	h := newHistogram(buckets)
	s.register(point{name: name, kind: kindHist, help: help, hist: h})
	return h
}

// Sampled registers a callback invoked on every scrape to emit samples
// with dynamic label sets (e.g. one QoS gauge per live stream). The
// callback runs under the scrape, never on the ingest path.
func (s *Set) Sampled(fn func(*Emitter)) {
	s.mu.Lock()
	s.samplers = append(s.samplers, fn)
	s.mu.Unlock()
}

// Name composes a series name from a family and label key/value pairs,
// escaping values per the Prometheus text format:
//
//	Name("sfd_stream_qap", "peer", `10.0.0.7:7946`)
//	  → sfd_stream_qap{peer="10.0.0.7:7946"}
func Name(family string, labels ...string) string {
	if len(labels) == 0 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
