package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the whole set in the Prometheus text format
// (version 0.0.4). Output is byte-stable for identical instrument state:
// families are sorted by name, series within a family by full series
// name, and histogram buckets stay in ascending-bound order.
func (s *Set) WritePrometheus(w io.Writer) error {
	s.mu.Lock()
	pts := append([]point(nil), s.static...)
	samplers := append(make([]func(*Emitter), 0, len(s.samplers)), s.samplers...)
	s.mu.Unlock()

	var em Emitter
	for _, fn := range samplers {
		fn(&em)
	}
	pts = append(pts, em.points...)

	type series struct {
		name  string
		lines []string
	}
	type family struct {
		typ, help string
		series    []series
	}
	fams := make(map[string]*family)
	order := make([]string, 0, len(pts))
	for _, p := range pts {
		famName := p.name
		if i := strings.IndexByte(famName, '{'); i >= 0 {
			famName = famName[:i]
		}
		f := fams[famName]
		if f == nil {
			f = &family{typ: p.kind, help: p.help}
			fams[famName] = f
			order = append(order, famName)
		}
		if f.help == "" {
			f.help = p.help
		}
		f.series = append(f.series, series{name: p.name, lines: renderPoint(famName, p)})
	}
	sort.Strings(order)

	for _, famName := range order {
		f := fams[famName]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", famName, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", famName, f.typ); err != nil {
			return err
		}
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].name < f.series[j].name })
		for _, sr := range f.series {
			for _, line := range sr.lines {
				if _, err := io.WriteString(w, line); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// renderPoint produces the text lines of one instrument or sample.
// Histograms expand into their cumulative _bucket/_sum/_count lines with
// the le label merged into any labels already on the series name.
func renderPoint(famName string, p point) []string {
	switch {
	case p.counter != nil:
		return []string{p.name + " " + strconv.FormatUint(p.counter.Value(), 10) + "\n"}
	case p.cfn != nil:
		return []string{p.name + " " + strconv.FormatUint(p.cfn(), 10) + "\n"}
	case p.gauge != nil:
		return []string{p.name + " " + formatFloat(p.gauge.Value()) + "\n"}
	case p.gfn != nil:
		return []string{p.name + " " + formatFloat(p.gfn()) + "\n"}
	case p.hist != nil:
		return renderHistogram(famName, p)
	default:
		return []string{p.name + " " + formatFloat(p.value) + "\n"}
	}
}

func renderHistogram(famName string, p point) []string {
	h := p.hist
	labels := "" // label body without braces, e.g. `peer="x"`
	if i := strings.IndexByte(p.name, '{'); i >= 0 {
		labels = strings.TrimSuffix(p.name[i+1:], "}")
	}
	withLE := func(le string) string {
		if labels == "" {
			return famName + `_bucket{le="` + le + `"}`
		}
		return famName + "_bucket{" + labels + `,le="` + le + `"}`
	}
	suffixed := func(sfx string) string {
		if labels == "" {
			return famName + sfx
		}
		return famName + sfx + "{" + labels + "}"
	}
	out := make([]string, 0, len(h.upper)+3)
	cum := uint64(0)
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		out = append(out, withLE(formatFloat(ub))+" "+strconv.FormatUint(cum, 10)+"\n")
	}
	cum += h.counts[len(h.upper)].Load()
	out = append(out, withLE("+Inf")+" "+strconv.FormatUint(cum, 10)+"\n")
	out = append(out, suffixed("_sum")+" "+formatFloat(h.Sum())+"\n")
	out = append(out, suffixed("_count")+" "+strconv.FormatUint(h.Count(), 10)+"\n")
	return out
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the set at its mount point
// (conventionally /metrics).
func (s *Set) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.WritePrometheus(w)
	})
}
