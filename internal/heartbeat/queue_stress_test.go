package heartbeat

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/clock"
	"repro/internal/transport"
)

// mqEndpoint is a test-local multi-queue endpoint: senders push decoded
// datagrams straight onto per-shard queues with the same FNV routing the
// UDP transport uses, so the receiver's per-queue drain goroutines see
// exactly the concurrency the batched ingest path produces.
type mqEndpoint struct {
	queues []chan transport.Inbound
	closed chan struct{}
	once   sync.Once
}

func newMQEndpoint(queues, depth int) *mqEndpoint {
	m := &mqEndpoint{queues: make([]chan transport.Inbound, queues), closed: make(chan struct{})}
	for i := range m.queues {
		m.queues[i] = make(chan transport.Inbound, depth)
	}
	return m
}

func (m *mqEndpoint) push(from string, payload []byte) {
	q := m.queues[int(fnv32a(from))%len(m.queues)]
	select {
	case q <- transport.Inbound{From: from, Payload: payload}:
	case <-m.closed:
	}
}

func (m *mqEndpoint) Send(string, []byte) error                { return nil }
func (m *mqEndpoint) Recv() <-chan transport.Inbound           { return m.queues[0] }
func (m *mqEndpoint) Addr() string                             { return "mq-test" }
func (m *mqEndpoint) RecvQueues() int                          { return len(m.queues) }
func (m *mqEndpoint) RecvQueue(i int) <-chan transport.Inbound { return m.queues[i] }

func (m *mqEndpoint) Close() error {
	m.once.Do(func() {
		close(m.closed)
		for _, q := range m.queues {
			close(q)
		}
	})
	return nil
}

var _ transport.QueuedEndpoint = (*mqEndpoint)(nil)

// TestReceiverMultiQueueStress races parallel queue drains against
// Forget/Tracked churn — the exact interleaving the sharded stale
// filter exists for. Run under -race this is the data-race proof; in
// any mode it checks per-sender delivery: no heartbeat accepted twice,
// none reordered, every sender's final sequence observed.
func TestReceiverMultiQueueStress(t *testing.T) {
	const (
		queues    = 8
		senders   = 64
		perSender = 200
	)
	ep := newMQEndpoint(queues, 1024)

	var mu sync.Mutex
	lastSeq := make(map[string]uint64)
	var accepted atomic.Uint64
	r := NewReceiver(ep, clock.NewSim(clock.Time(0)), func(a Arrival) {
		mu.Lock()
		if prev, ok := lastSeq[a.From]; ok && a.Seq <= prev {
			mu.Unlock()
			t.Errorf("sender %s: seq %d delivered after %d", a.From, a.Seq, prev)
			return
		}
		lastSeq[a.From] = a.Seq
		mu.Unlock()
		accepted.Add(1)
	})
	r.Start()

	var wg sync.WaitGroup
	// Senders: each walks its sequence forward exactly once. (No
	// duplicates here on purpose: a duplicate racing a Forget of its
	// live sender may legally be re-accepted, which would make the
	// monotonicity assertion flaky. Dup filtering has its own tests.)
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			from := fmt.Sprintf("10.0.%d.%d:9000", s/256, s%256)
			for seq := uint64(1); seq <= perSender; seq++ {
				msg := Message{Kind: KindHeartbeat, Seq: seq, Inc: 1}
				ep.push(from, msg.Marshal())
			}
		}(s)
	}
	// Churn: Forget random senders and sample Tracked concurrently.
	churnStop := make(chan struct{})
	var churn sync.WaitGroup
	for c := 0; c < 4; c++ {
		churn.Add(1)
		go func(c int) {
			defer churn.Done()
			i := c
			for {
				select {
				case <-churnStop:
					return
				default:
				}
				r.Forget(fmt.Sprintf("10.0.%d.%d:9000", (i/256)%256, i%256))
				_ = r.Tracked()
				i += 7
			}
		}(c)
	}

	wg.Wait()
	close(churnStop)
	churn.Wait()
	ep.Close()
	r.Wait()

	// Each seq was sent exactly once and queues preserve per-sender
	// order, so every heartbeat must have been accepted — a Forget only
	// erases filter state, it never rejects a strictly newer seq.
	recvd, stale := r.Counters()
	if accepted.Load() != recvd {
		t.Fatalf("handler saw %d arrivals, receiver counted %d", accepted.Load(), recvd)
	}
	if recvd != senders*perSender {
		t.Fatalf("accepted %d of %d heartbeats", recvd, senders*perSender)
	}
	if stale != 0 {
		t.Fatalf("%d heartbeats marked stale without duplicates on the wire", stale)
	}
	mu.Lock()
	defer mu.Unlock()
	for s := 0; s < senders; s++ {
		from := fmt.Sprintf("10.0.%d.%d:9000", s/256, s%256)
		if lastSeq[from] != perSender {
			t.Fatalf("sender %s: final seq %d, want %d", from, lastSeq[from], uint64(perSender))
		}
	}
}

// TestReceiverMultiQueueDrainsAllQueues pins the Start contract: on a
// QueuedEndpoint every queue is drained, not just Recv().
func TestReceiverMultiQueueDrainsAllQueues(t *testing.T) {
	ep := newMQEndpoint(4, 16)
	got := make(chan string, 64)
	r := NewReceiver(ep, clock.NewSim(clock.Time(0)), func(a Arrival) { got <- a.From })
	r.Start()

	// One sender per queue, routed by hand to guarantee coverage.
	for q := 0; q < 4; q++ {
		msg := Message{Kind: KindHeartbeat, Seq: 1, Inc: 1}
		from := fmt.Sprintf("q%d", q)
		ep.queues[q] <- transport.Inbound{From: from, Payload: msg.Marshal()}
	}
	seen := make(map[string]bool)
	for len(seen) < 4 {
		seen[<-got] = true
	}
	ep.Close()
	r.Wait()
}
