package heartbeat

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/transport"
)

func TestNamedMessageRoundTrip(t *testing.T) {
	cases := []Message{
		{Kind: KindHeartbeat, Seq: 1, Time: 100, Inc: 3, Name: "a"},
		{Kind: KindHeartbeat, Seq: 9, Time: 7, Inc: 1, Name: "dc/rack-3/web-17"},
		{Kind: KindHeartbeat, Seq: 0, Time: 0, Inc: 0, Name: strings.Repeat("x", MaxNameLen)},
	}
	for _, m := range cases {
		b := m.Marshal()
		if want := 29 + len(m.Name); len(b) != want {
			t.Fatalf("v3 %q: wire size %d, want %d", m.Name, len(b), want)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%q: %v", m.Name, err)
		}
		if got != m {
			t.Fatalf("round trip: %+v → %+v", m, got)
		}
	}
}

func TestUnnamedStaysWireV2(t *testing.T) {
	m := Message{Kind: KindHeartbeat, Seq: 5, Time: 10, Inc: 2}
	if b := m.Marshal(); len(b) != 28 {
		t.Fatalf("empty name must emit v2 (28 bytes), got %d", len(b))
	}
}

func TestNamedRejectsBadWire(t *testing.T) {
	base := (Message{Kind: KindHeartbeat, Name: "peer"}).Marshal()
	cases := map[string][]byte{
		"truncated name": base[:len(base)-1],
		"zero name len": func() []byte {
			b := append([]byte(nil), base...)
			b[28] = 0
			return b[:29]
		}(),
		"length overruns": func() []byte {
			b := append([]byte(nil), base...)
			b[28] = 200
			return b
		}(),
	}
	for name, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestAppendToReusesBuffer(t *testing.T) {
	m := Message{Kind: KindHeartbeat, Seq: 1, Time: 2, Inc: 3, Name: "dc/s-00001"}
	buf := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		buf = m.AppendTo(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendTo into a sized buffer allocated %.1f times/op", allocs)
	}
	got, err := Unmarshal(buf)
	if err != nil || got != m {
		t.Fatalf("reused-buffer round trip: %+v, %v", got, err)
	}
}

func TestMarshalPanicsOnOverlongName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 256-byte name")
		}
	}()
	(&Message{Kind: KindHeartbeat, Name: strings.Repeat("n", MaxNameLen+1)}).Marshal()
}

// TestReceiverKeysByName is the heart of wire v3: two sockets carrying
// the same logical name are one stream (seq continues, no reset), and
// the arrival's From is the name, not the socket address.
func TestReceiverKeysByName(t *testing.T) {
	hub := transport.NewHub(0, 0, 1)
	mon := hub.Endpoint("mon")
	sockA := hub.Endpoint("sockA")
	sockB := hub.Endpoint("sockB")
	clk := clock.NewSim(clock.Time(0))

	var arrivals []Arrival
	var mu sync.Mutex
	r := NewReceiver(mon, clk, func(a Arrival) {
		mu.Lock()
		arrivals = append(arrivals, a)
		mu.Unlock()
	})
	r.Start()
	defer mon.Close()

	send := func(ep transport.Endpoint, seq uint64) {
		m := Message{Kind: KindHeartbeat, Seq: seq, Time: clk.Now(), Inc: 1, Name: "app/db-1"}
		if err := ep.Send("mon", m.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	send(sockA, 0)
	send(sockA, 1)
	send(sockB, 2) // same stream continues from a new source address
	send(sockA, 2) // duplicate seq from the old address: stale
	waitFor(t, "3 named arrivals", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(arrivals) >= 3
	})
	time.Sleep(20 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	if len(arrivals) != 3 {
		t.Fatalf("got %d arrivals, want 3 (dup from old socket must be stale)", len(arrivals))
	}
	for i, a := range arrivals {
		if a.From != "app/db-1" {
			t.Fatalf("arrival %d keyed by %q, want the logical name", i, a.From)
		}
		if a.Seq != uint64(i) {
			t.Fatalf("arrival %d has seq %d", i, a.Seq)
		}
	}
	if got := r.Tracked(); got != 1 {
		t.Fatalf("two sockets, one name: tracked=%d, want 1", got)
	}
}

// TestReceiverNamedDecodeNoAlloc locks in the alloc-free ingest path for
// a known stream: Decode returns the name as a sub-slice and the filter
// map is probed without materializing a string.
func TestReceiverNamedDecodeNoAlloc(t *testing.T) {
	m := Message{Kind: KindHeartbeat, Seq: 1, Time: 2, Inc: 1, Name: "dc/s-00042"}
	b := m.Marshal()
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := Decode(b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Decode allocated %.1f times/op", allocs)
	}
}
