// Package heartbeat implements the paper's monitoring protocol (Fig. 2):
// a Sender emits numbered, timestamped heartbeats every Δt over an
// unreliable datagram endpoint; a Receiver decodes them, filters stale
// deliveries, and feeds any failure detector. A Ping probe runs alongside
// to estimate the round-trip time, mirroring the paper's "low-frequency
// ping process ... a means to obtain a rough estimation of the round-trip
// time, and also to make sure the network is connected" (§V).
package heartbeat

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/clock"
)

// Kind discriminates wire messages.
type Kind uint8

const (
	// KindHeartbeat is a periodic liveness message.
	KindHeartbeat Kind = 1
	// KindPing requests an echo (RTT probe).
	KindPing Kind = 2
	// KindPong answers a ping, echoing its timestamp.
	KindPong Kind = 3
)

// wire format v2: magic(2) version(1) kind(1) seq(8) time(8) inc(8) = 28
// bytes. v1 (20 bytes, no incarnation) is still accepted on receive so a
// mixed-version fleet keeps working; v1 senders report incarnation 0.
//
// wire format v3 appends a logical stream name: the v2 layout followed by
// nameLen(1) name(1..255) = 29+len bytes. A named heartbeat identifies its
// stream by the carried name instead of the datagram's source address, so
// one socket can multiplex many logical senders (a load harness pooling
// sockets under the file-descriptor limit) and a sender surviving a NAT
// rebind keeps its identity across the source-port change. Nameless
// messages marshal as v2, so v3 is invisible until someone uses it.
const (
	msgSizeV1   = 20
	msgSize     = 28
	msgVersion  = 2
	msgSizeV3   = 29 // fixed prefix; the name follows
	msgVersion3 = 3
	// MaxNameLen is the longest stream name a v3 heartbeat can carry
	// (single length byte on the wire).
	MaxNameLen = 255
)

var msgMagic = [2]byte{'H', 'B'}

// ErrBadMessage reports an undecodable datagram.
var ErrBadMessage = errors.New("heartbeat: bad message")

// Message is a decoded wire message.
type Message struct {
	Kind Kind
	Seq  uint64
	// Time is the sender's clock at send for heartbeats and pings; pongs
	// echo the ping's timestamp so the prober can compute RTT from its
	// own clock alone.
	Time clock.Time
	// Inc is the sender's incarnation number (SWIM-style): a process that
	// restarts after a crash bumps it, which both resets the receiver's
	// per-incarnation sequence filter and lets the gossip layer refute
	// stale suspicion of the previous incarnation.
	Inc uint64
	// Name is the logical stream name (wire v3). Empty marshals as v2 and
	// the stream is identified by its source address, the pre-v3
	// behavior. Must be at most MaxNameLen bytes.
	Name string
}

// Marshal encodes the message into a fresh buffer: v2 (28 bytes) when
// Name is empty, v3 (29+len(Name)) otherwise. It panics if Name exceeds
// MaxNameLen — a programmer error callers validate at configuration time.
func (m Message) Marshal() []byte {
	size := msgSize
	if m.Name != "" {
		size = msgSizeV3 + len(m.Name)
	}
	return m.AppendTo(make([]byte, 0, size))
}

// AppendTo appends the wire encoding to buf and returns the extended
// slice — the allocation-free path for a fleet sender reusing one
// marshal buffer per worker. Same version selection and Name-length
// panic as Marshal.
func (m Message) AppendTo(buf []byte) []byte {
	if len(m.Name) > MaxNameLen {
		panic("heartbeat: stream name exceeds 255 bytes")
	}
	ver := byte(msgVersion)
	if m.Name != "" {
		ver = msgVersion3
	}
	buf = append(buf, msgMagic[0], msgMagic[1], ver, byte(m.Kind))
	buf = binary.BigEndian.AppendUint64(buf, m.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Time))
	buf = binary.BigEndian.AppendUint64(buf, m.Inc)
	if m.Name != "" {
		buf = append(buf, byte(len(m.Name)))
		buf = append(buf, m.Name...)
	}
	return buf
}

// Unmarshal decodes a datagram (v1, v2, or v3). For v3 the Name field is
// a fresh string; use Decode on hot paths that want to intern it.
func Unmarshal(b []byte) (Message, error) {
	m, name, err := Decode(b)
	if err != nil {
		return Message{}, err
	}
	if len(name) > 0 {
		m.Name = string(name)
	}
	return m, nil
}

// Decode is Unmarshal without the name allocation: the v3 stream name is
// returned as a sub-slice of b (nil for v1/v2) and m.Name is left empty.
// Callers must not retain the name slice past the datagram buffer's
// lifetime — the receiver interns it into its own state instead.
func Decode(b []byte) (m Message, name []byte, err error) {
	if len(b) < msgSizeV1 {
		return Message{}, nil, fmt.Errorf("%w: length %d", ErrBadMessage, len(b))
	}
	if b[0] != msgMagic[0] || b[1] != msgMagic[1] {
		return Message{}, nil, fmt.Errorf("%w: bad magic", ErrBadMessage)
	}
	switch {
	case b[2] == 1 && len(b) == msgSizeV1:
	case b[2] == msgVersion && len(b) == msgSize:
	case b[2] == msgVersion3 && len(b) >= msgSizeV3:
		n := int(b[msgSizeV3-1])
		if n == 0 || len(b) != msgSizeV3+n {
			return Message{}, nil, fmt.Errorf("%w: v3 name length %d with length %d", ErrBadMessage, n, len(b))
		}
		name = b[msgSizeV3:]
	default:
		return Message{}, nil, fmt.Errorf("%w: version %d with length %d", ErrBadMessage, b[2], len(b))
	}
	k := Kind(b[3])
	if k != KindHeartbeat && k != KindPing && k != KindPong {
		return Message{}, nil, fmt.Errorf("%w: kind %d", ErrBadMessage, b[3])
	}
	m = Message{
		Kind: k,
		Seq:  binary.BigEndian.Uint64(b[4:]),
		Time: clock.Time(binary.BigEndian.Uint64(b[12:])),
	}
	if len(b) >= msgSize {
		m.Inc = binary.BigEndian.Uint64(b[20:])
	}
	return m, name, nil
}
