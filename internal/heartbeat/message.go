// Package heartbeat implements the paper's monitoring protocol (Fig. 2):
// a Sender emits numbered, timestamped heartbeats every Δt over an
// unreliable datagram endpoint; a Receiver decodes them, filters stale
// deliveries, and feeds any failure detector. A Ping probe runs alongside
// to estimate the round-trip time, mirroring the paper's "low-frequency
// ping process ... a means to obtain a rough estimation of the round-trip
// time, and also to make sure the network is connected" (§V).
package heartbeat

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/clock"
)

// Kind discriminates wire messages.
type Kind uint8

const (
	// KindHeartbeat is a periodic liveness message.
	KindHeartbeat Kind = 1
	// KindPing requests an echo (RTT probe).
	KindPing Kind = 2
	// KindPong answers a ping, echoing its timestamp.
	KindPong Kind = 3
)

// wire format v2: magic(2) version(1) kind(1) seq(8) time(8) inc(8) = 28
// bytes. v1 (20 bytes, no incarnation) is still accepted on receive so a
// mixed-version fleet keeps working; v1 senders report incarnation 0.
const (
	msgSizeV1  = 20
	msgSize    = 28
	msgVersion = 2
)

var msgMagic = [2]byte{'H', 'B'}

// ErrBadMessage reports an undecodable datagram.
var ErrBadMessage = errors.New("heartbeat: bad message")

// Message is a decoded wire message.
type Message struct {
	Kind Kind
	Seq  uint64
	// Time is the sender's clock at send for heartbeats and pings; pongs
	// echo the ping's timestamp so the prober can compute RTT from its
	// own clock alone.
	Time clock.Time
	// Inc is the sender's incarnation number (SWIM-style): a process that
	// restarts after a crash bumps it, which both resets the receiver's
	// per-incarnation sequence filter and lets the gossip layer refute
	// stale suspicion of the previous incarnation.
	Inc uint64
}

// Marshal encodes the message into a fresh 28-byte v2 buffer.
func (m Message) Marshal() []byte {
	buf := make([]byte, msgSize)
	buf[0], buf[1] = msgMagic[0], msgMagic[1]
	buf[2] = msgVersion
	buf[3] = byte(m.Kind)
	binary.BigEndian.PutUint64(buf[4:], m.Seq)
	binary.BigEndian.PutUint64(buf[12:], uint64(m.Time))
	binary.BigEndian.PutUint64(buf[20:], m.Inc)
	return buf
}

// Unmarshal decodes a datagram (v1 or v2).
func Unmarshal(b []byte) (Message, error) {
	if len(b) != msgSize && len(b) != msgSizeV1 {
		return Message{}, fmt.Errorf("%w: length %d", ErrBadMessage, len(b))
	}
	if b[0] != msgMagic[0] || b[1] != msgMagic[1] {
		return Message{}, fmt.Errorf("%w: bad magic", ErrBadMessage)
	}
	switch {
	case b[2] == 1 && len(b) == msgSizeV1:
	case b[2] == msgVersion && len(b) == msgSize:
	default:
		return Message{}, fmt.Errorf("%w: version %d with length %d", ErrBadMessage, b[2], len(b))
	}
	k := Kind(b[3])
	if k != KindHeartbeat && k != KindPing && k != KindPong {
		return Message{}, fmt.Errorf("%w: kind %d", ErrBadMessage, b[3])
	}
	m := Message{
		Kind: k,
		Seq:  binary.BigEndian.Uint64(b[4:]),
		Time: clock.Time(binary.BigEndian.Uint64(b[12:])),
	}
	if len(b) == msgSize {
		m.Inc = binary.BigEndian.Uint64(b[20:])
	}
	return m, nil
}
