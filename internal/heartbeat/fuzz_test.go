package heartbeat

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hardens the wire codec against hostile datagrams: a
// monitor's UDP port is open to the world, so no byte sequence may panic
// the decoder, and anything it accepts must re-encode losslessly (v1
// inputs normalize to the current version with incarnation 0).
func FuzzUnmarshal(f *testing.F) {
	f.Add((Message{Kind: KindHeartbeat, Seq: 7, Time: 42, Inc: 3}).Marshal())
	f.Add((Message{Kind: KindPing, Seq: 1 << 40, Time: 1<<62 - 1}).Marshal())
	f.Add((Message{Kind: KindPong, Seq: 1<<64 - 1, Inc: 1<<64 - 1}).Marshal())
	// A v1 (20-byte) heartbeat: still accepted, decodes with Inc 0.
	v1 := []byte{'H', 'B', 1, byte(KindHeartbeat),
		0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 1, 0}
	f.Add(v1)
	f.Add([]byte{})
	f.Add([]byte("HB"))
	f.Add(bytes.Repeat([]byte{0xff}, 28))
	// Chaos-mutated shapes the injection layer produces in flight
	// (KindTruncate / KindDuplicate): a v2 heartbeat cut to exactly the
	// v1 length (the version byte must win over the length heuristic),
	// cut to one byte short, cut to half (truncate's default), and two
	// datagrams fused into one payload.
	v2 := (Message{Kind: KindHeartbeat, Seq: 7, Time: 42, Inc: 3}).Marshal()
	f.Add(v2[:20])
	f.Add(v2[:27])
	f.Add(v2[:14])
	f.Add(append(append([]byte{}, v2...), v2...))

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Unmarshal(b)
		if err != nil {
			return // rejected garbage is fine; panicking is not
		}
		if m.Kind != KindHeartbeat && m.Kind != KindPing && m.Kind != KindPong {
			t.Fatalf("accepted message with invalid kind %d", m.Kind)
		}
		out := m.Marshal()
		m2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if m2 != m {
			t.Fatalf("lossy round trip: %+v → %+v", m, m2)
		}
	})
}
