package heartbeat

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
	"repro/internal/transport"
)

func TestMessageRoundTrip(t *testing.T) {
	cases := []Message{
		{Kind: KindHeartbeat, Seq: 0, Time: 0},
		{Kind: KindHeartbeat, Seq: 123456789, Time: clock.Time(987654321)},
		{Kind: KindPing, Seq: 1, Time: clock.Time(clock.Second)},
		{Kind: KindPong, Seq: 1<<64 - 1, Time: clock.Time(1<<62 - 1)},
	}
	for _, m := range cases {
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip: %+v → %+v", m, got)
		}
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(kindSel uint8, seq uint64, tm int64) bool {
		kinds := []Kind{KindHeartbeat, KindPing, KindPong}
		m := Message{Kind: kinds[int(kindSel)%3], Seq: seq, Time: clock.Time(tm)}
		got, err := Unmarshal(m.Marshal())
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 19),
		make([]byte, 21),
		func() []byte { b := (Message{Kind: KindHeartbeat}).Marshal(); b[0] = 'X'; return b }(),
		func() []byte { b := (Message{Kind: KindHeartbeat}).Marshal(); b[2] = 99; return b }(),
		func() []byte { b := (Message{Kind: KindHeartbeat}).Marshal(); b[3] = 0; return b }(),
	}
	for i, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// collectArrivals wires a sender to a receiver over a hub and returns the
// arrivals gathered within the duration.
func collectArrivals(t *testing.T, lossRate float64, run time.Duration, interval time.Duration) []Arrival {
	t.Helper()
	hub := transport.NewHub(lossRate, 0, 1)
	sEP := hub.Endpoint("p")
	rEP := hub.Endpoint("q")
	defer sEP.Close()

	var mu sync.Mutex
	var got []Arrival
	recv := NewReceiver(rEP, nil, func(a Arrival) {
		mu.Lock()
		got = append(got, a)
		mu.Unlock()
	})
	recv.Start()

	snd := NewSender(sEP, "q", interval, nil)
	snd.Start()
	time.Sleep(run)
	snd.Stop()
	rEP.Close()
	recv.Wait()

	mu.Lock()
	defer mu.Unlock()
	return append([]Arrival(nil), got...)
}

func TestSenderReceiverEndToEnd(t *testing.T) {
	got := collectArrivals(t, 0, 120*time.Millisecond, 10*time.Millisecond)
	if len(got) < 5 {
		t.Fatalf("received only %d heartbeats", len(got))
	}
	for i, a := range got {
		if a.From != "p" {
			t.Fatalf("arrival %d from %q", i, a.From)
		}
		if uint64(i) != a.Seq {
			t.Fatalf("seq gap without loss: %d at %d", a.Seq, i)
		}
		if a.Recv < a.Send-clock.Time(time.Second) {
			t.Fatalf("implausible timestamps: %+v", a)
		}
	}
}

func TestSenderCrashStopsHeartbeats(t *testing.T) {
	hub := transport.NewHub(0, 0, 1)
	sEP := hub.Endpoint("p")
	rEP := hub.Endpoint("q")
	defer rEP.Close()
	defer sEP.Close()

	var mu sync.Mutex
	count := 0
	recv := NewReceiver(rEP, nil, func(Arrival) { mu.Lock(); count++; mu.Unlock() })
	recv.Start()

	snd := NewSender(sEP, "q", 5*time.Millisecond, nil)
	snd.Start()
	time.Sleep(30 * time.Millisecond)
	snd.Crash()
	if !snd.Crashed() {
		t.Fatal("Crashed() false after Crash")
	}
	mu.Lock()
	after := count
	mu.Unlock()
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	final := count
	mu.Unlock()
	if final > after+1 {
		t.Fatalf("heartbeats kept flowing after crash: %d → %d", after, final)
	}
}

func TestReceiverFiltersStale(t *testing.T) {
	hub := transport.NewHub(0, 0, 1)
	sEP := hub.Endpoint("p")
	rEP := hub.Endpoint("q")
	defer sEP.Close()
	defer rEP.Close()

	var mu sync.Mutex
	var seqs []uint64
	recv := NewReceiver(rEP, nil, func(a Arrival) { mu.Lock(); seqs = append(seqs, a.Seq); mu.Unlock() })
	recv.Start()

	send := func(seq uint64) {
		m := Message{Kind: KindHeartbeat, Seq: seq, Time: 0}
		sEP.Send("q", m.Marshal())
	}
	for _, s := range []uint64{0, 1, 2, 1, 2, 0, 3} {
		send(s)
	}
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	want := []uint64{0, 1, 2, 3}
	if len(seqs) != len(want) {
		t.Fatalf("accepted %v, want %v", seqs, want)
	}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("accepted %v, want %v", seqs, want)
		}
	}
	received, stale := recv.Counters()
	if received != 4 || stale != 3 {
		t.Fatalf("counters %d/%d, want 4/3", received, stale)
	}
}

// TestReceiverForget: dropping a peer's stale-filter state bounds the
// table under churn and re-admits the peer from any sequence number.
func TestReceiverForget(t *testing.T) {
	hub := transport.NewHub(0, 0, 1)
	sEP := hub.Endpoint("p")
	rEP := hub.Endpoint("q")
	defer sEP.Close()
	defer rEP.Close()

	var mu sync.Mutex
	var seqs []uint64
	recv := NewReceiver(rEP, nil, func(a Arrival) { mu.Lock(); seqs = append(seqs, a.Seq); mu.Unlock() })
	recv.Start()

	send := func(seq uint64) {
		m := Message{Kind: KindHeartbeat, Seq: seq, Time: 0}
		sEP.Send("q", m.Marshal())
	}
	send(10)
	time.Sleep(20 * time.Millisecond)
	if recv.Tracked() != 1 {
		t.Fatalf("Tracked() = %d, want 1", recv.Tracked())
	}
	// Without Forget, seq 3 would be stale-dropped (3 <= 10). After
	// Forget the peer restarts from scratch and 3 is accepted.
	recv.Forget("p")
	if recv.Tracked() != 0 {
		t.Fatalf("Tracked() after Forget = %d, want 0", recv.Tracked())
	}
	send(3)
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != 2 || seqs[0] != 10 || seqs[1] != 3 {
		t.Fatalf("accepted %v, want [10 3]", seqs)
	}
}

// TestReceiverIncarnationEcho: a restarted sender bumps its incarnation
// and restarts sequence numbering from 0; the receiver must accept the
// new life immediately and reject stragglers from the dead one.
func TestReceiverIncarnationEcho(t *testing.T) {
	hub := transport.NewHub(0, 0, 1)
	sEP := hub.Endpoint("p")
	rEP := hub.Endpoint("q")
	defer sEP.Close()
	defer rEP.Close()

	var mu sync.Mutex
	var got []Arrival
	recv := NewReceiver(rEP, nil, func(a Arrival) { mu.Lock(); got = append(got, a); mu.Unlock() })
	recv.Start()

	send := func(inc, seq uint64) {
		m := Message{Kind: KindHeartbeat, Seq: seq, Inc: inc}
		sEP.Send("q", m.Marshal())
	}
	send(0, 10)
	send(1, 0)  // restart: lower seq, higher incarnation → accepted
	send(0, 11) // straggler from the dead incarnation → dropped
	send(1, 1)
	time.Sleep(30 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	want := []struct{ inc, seq uint64 }{{0, 10}, {1, 0}, {1, 1}}
	if len(got) != len(want) {
		t.Fatalf("accepted %d arrivals, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Inc != w.inc || got[i].Seq != w.seq {
			t.Fatalf("arrival %d = inc %d seq %d, want inc %d seq %d",
				i, got[i].Inc, got[i].Seq, w.inc, w.seq)
		}
	}
	if _, stale := recv.Counters(); stale != 1 {
		t.Fatalf("stale = %d, want 1", stale)
	}
}

// TestReceiverForgetConcurrent races Forget/Tracked against a stream of
// deliveries — the churn pattern of a monitor evicting peers while their
// last datagrams are still in flight (run under -race; mirrors the
// transport Hub stress test).
func TestReceiverForgetConcurrent(t *testing.T) {
	hub := transport.NewHub(0, 0, 1)
	rEP := hub.Endpoint("q")
	defer rEP.Close()

	peers := []string{"a", "b", "c", "d"}
	eps := make([]*transport.MemEndpoint, len(peers))
	for i, p := range peers {
		eps[i] = hub.Endpoint(p)
		defer eps[i].Close()
	}

	recv := NewReceiver(rEP, nil, func(Arrival) {})
	recv.Start()

	const rounds = 500
	var wg sync.WaitGroup
	for i := range peers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for seq := uint64(0); seq < rounds; seq++ {
				m := Message{Kind: KindHeartbeat, Seq: seq}
				eps[i].Send("q", m.Marshal())
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < rounds; n++ {
			recv.Forget(peers[n%len(peers)])
			recv.Tracked()
			recv.Counters()
		}
	}()
	wg.Wait()
	time.Sleep(20 * time.Millisecond) // let queued deliveries drain

	if got := recv.Tracked(); got > len(peers) {
		t.Fatalf("Tracked() = %d, want ≤ %d", got, len(peers))
	}
	for _, p := range peers {
		recv.Forget(p)
	}
	if got := recv.Tracked(); got != 0 {
		t.Fatalf("Tracked() after forgetting everyone = %d, want 0", got)
	}
}

func TestReceiverIgnoresForeignDatagrams(t *testing.T) {
	hub := transport.NewHub(0, 0, 1)
	sEP := hub.Endpoint("p")
	rEP := hub.Endpoint("q")
	defer sEP.Close()
	defer rEP.Close()
	called := false
	recv := NewReceiver(rEP, nil, func(Arrival) { called = true })
	recv.Start()
	sEP.Send("q", []byte("junk that is not a heartbeat"))
	time.Sleep(20 * time.Millisecond)
	if called {
		t.Fatal("handler called for foreign datagram")
	}
}

func TestProberMeasuresRTT(t *testing.T) {
	const delay = 10 * time.Millisecond
	hub := transport.NewHub(0, delay, 1)
	pEP := hub.Endpoint("prober")
	qEP := hub.Endpoint("target")
	defer pEP.Close()
	defer qEP.Close()

	// The target answers pings.
	recv := NewReceiver(qEP, nil, nil)
	recv.Start()

	prb := NewProber(pEP, "target", nil)
	prb.Start(15 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for prb.Samples() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	prb.Stop()
	if prb.Samples() < 3 {
		t.Fatal("prober collected no samples")
	}
	rtt, ok := prb.RTT()
	if !ok {
		t.Fatal("no RTT estimate")
	}
	// One-way delay is 10 ms each direction → RTT ≈ 20 ms.
	if rtt < 15*time.Millisecond || rtt > 200*time.Millisecond {
		t.Fatalf("RTT = %v, want ≈20ms", rtt)
	}
}

func TestProberNoPongNoEstimate(t *testing.T) {
	hub := transport.NewHub(1.0, 0, 1) // everything lost
	pEP := hub.Endpoint("prober")
	hub.Endpoint("target")
	defer pEP.Close()
	prb := NewProber(pEP, "target", nil)
	prb.Start(5 * time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	prb.Stop()
	if _, ok := prb.RTT(); ok {
		t.Fatal("RTT estimate with 100% loss")
	}
}

func TestUDPEndToEnd(t *testing.T) {
	sEP, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rEP, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sEP.Close()

	var mu sync.Mutex
	var got []Arrival
	recv := NewReceiver(rEP, nil, func(a Arrival) { mu.Lock(); got = append(got, a); mu.Unlock() })
	recv.Start()

	snd := NewSender(sEP, rEP.Addr(), 5*time.Millisecond, nil)
	snd.Start()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 5 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	snd.Stop()
	rEP.Close()
	recv.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(got) < 5 {
		t.Fatalf("UDP loopback delivered only %d heartbeats", len(got))
	}
}

func TestUDPPingPong(t *testing.T) {
	target, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	NewReceiver(target, nil, nil).Start()

	probEP, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer probEP.Close()
	prb := NewProber(probEP, target.Addr(), nil)
	prb.Start(10 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for prb.Samples() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	prb.Stop()
	if prb.Samples() == 0 {
		t.Fatal("no pong over UDP loopback")
	}
	if rtt, ok := prb.RTT(); !ok || rtt <= 0 || rtt > time.Second {
		t.Fatalf("RTT = %v, ok=%v", rtt, ok)
	}
}

func TestUDPSendAfterClose(t *testing.T) {
	ep, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ep.Close()
	if err := ep.Send("127.0.0.1:9", []byte("x")); err == nil {
		t.Fatal("send after close succeeded")
	}
	if err := ep.Close(); err != nil {
		t.Fatalf("double close errored: %v", err)
	}
}

func TestHubUnknownDestination(t *testing.T) {
	hub := transport.NewHub(0, 0, 1)
	a := hub.Endpoint("a")
	defer a.Close()
	if err := a.Send("ghost", []byte("x")); err == nil {
		t.Fatal("send to unknown endpoint succeeded")
	}
}

func TestHubDuplicateEndpointPanics(t *testing.T) {
	hub := transport.NewHub(0, 0, 1)
	hub.Endpoint("a")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate endpoint did not panic")
		}
	}()
	hub.Endpoint("a")
}

func TestMemEndpointCloseSemantics(t *testing.T) {
	hub := transport.NewHub(0, 0, 1)
	a := hub.Endpoint("a")
	b := hub.Endpoint("b")
	b.Close()
	if err := b.Send("a", []byte("x")); err != transport.ErrClosed {
		t.Fatalf("send on closed = %v, want ErrClosed", err)
	}
	if err := a.Send("b", []byte("x")); err == nil {
		t.Fatal("send to deregistered endpoint succeeded")
	}
	if _, ok := <-b.Recv(); ok {
		t.Fatal("recv channel not closed")
	}
}
