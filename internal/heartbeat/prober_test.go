package heartbeat

// Regression tests for the Prober pong-filter fix: each sent ping seq is
// accepted exactly once; duplicated, unsent, and stale pongs are dropped
// instead of double-counting Samples() and skewing the RTT EWMA.

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/transport"
)

// pongFor builds the datagram a responder would send back for seq.
func pongFor(seq uint64, at clock.Time) transport.Inbound {
	msg := Message{Kind: KindPong, Seq: seq, Time: at}
	return transport.Inbound{From: "target", Payload: msg.Marshal()}
}

func TestProberIgnoresDuplicatePong(t *testing.T) {
	hub := transport.NewHub(0, 0, 1)
	ep := hub.Endpoint("prober")
	defer ep.Close()
	clk := clock.NewSim(0)
	prb := NewProber(ep, "target", clk)

	prb.sendPing() // seq 0 at t=0
	clk.Advance(20 * clock.Millisecond)
	pong := pongFor(0, 0)
	prb.consume(pong)
	if prb.Samples() != 1 {
		t.Fatalf("Samples after first pong = %d, want 1", prb.Samples())
	}
	rtt1, _ := prb.RTT()

	// The network duplicates the pong: it must not count again, and the
	// EWMA must not fold the same exchange in twice.
	clk.Advance(30 * clock.Millisecond)
	prb.consume(pong)
	if prb.Samples() != 1 {
		t.Fatalf("Samples after duplicated pong = %d, want 1 (double-counted)", prb.Samples())
	}
	if rtt2, _ := prb.RTT(); rtt2 != rtt1 {
		t.Fatalf("RTT changed by duplicated pong: %v → %v", rtt1, rtt2)
	}
	if prb.Ignored() != 1 {
		t.Fatalf("Ignored = %d, want 1", prb.Ignored())
	}
}

func TestProberIgnoresUnsentSeq(t *testing.T) {
	hub := transport.NewHub(0, 0, 1)
	ep := hub.Endpoint("prober")
	defer ep.Close()
	clk := clock.NewSim(0)
	prb := NewProber(ep, "target", clk)

	prb.sendPing() // seq 0
	clk.Advance(clock.Millisecond)
	// A pong for a seq never pinged (forged or misrouted) is dropped.
	prb.consume(pongFor(99, 0))
	if prb.Samples() != 0 {
		t.Fatalf("Samples after unsent-seq pong = %d, want 0", prb.Samples())
	}
	if prb.Ignored() != 1 {
		t.Fatalf("Ignored = %d, want 1", prb.Ignored())
	}
}

func TestProberExpiresStaleOutstanding(t *testing.T) {
	hub := transport.NewHub(0, 0, 1)
	ep := hub.Endpoint("prober")
	defer ep.Close()
	clk := clock.NewSim(0)
	prb := NewProber(ep, "target", clk)

	// proberWindow+1 pings with every pong lost: seq 0 ages out of the
	// outstanding table, so its extremely late pong no longer counts and
	// the table stays bounded.
	for i := 0; i <= proberWindow; i++ {
		prb.sendPing()
		clk.Advance(clock.Millisecond)
	}
	prb.mu.Lock()
	pendingLen := len(prb.pending)
	prb.mu.Unlock()
	if pendingLen > proberWindow {
		t.Fatalf("pending table = %d entries, want ≤ %d", pendingLen, proberWindow)
	}
	prb.consume(pongFor(0, 0))
	if prb.Samples() != 0 {
		t.Fatalf("Samples after stale pong = %d, want 0", prb.Samples())
	}
}

// TestProberLiveDuplicatedNetwork runs the full loop over a duplicating
// hub-free path: the responder answers each ping once, but we inject a
// duplicate of every pong; sample count must equal accepted pings.
func TestProberLiveOncePerSeq(t *testing.T) {
	const delay = 2 * time.Millisecond
	hub := transport.NewHub(0, delay, 1)
	pEP := hub.Endpoint("prober")
	qEP := hub.Endpoint("target")
	defer pEP.Close()
	defer qEP.Close()

	recv := NewReceiver(qEP, nil, nil)
	recv.Start()
	prb := NewProber(pEP, "target", nil)
	prb.Start(5 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for prb.Samples() < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	prb.Stop()
	if got := prb.Samples(); got < 3 {
		t.Fatalf("Samples = %d, want ≥ 3", got)
	}
	if got, sent := uint64(prb.Samples()), func() uint64 {
		prb.mu.Lock()
		defer prb.mu.Unlock()
		return prb.nextSeq
	}(); got > sent {
		t.Fatalf("Samples %d exceeds pings sent %d", got, sent)
	}
}
