package heartbeat

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/transport"
)

// Sender periodically emits heartbeats to one destination — the paper's
// process p ("p may periodically send a message to q, perform local
// computation, or is subject to crash", §II-B).
type Sender struct {
	ep       transport.Endpoint
	to       string
	interval time.Duration
	clk      clock.Clock

	seq     uint64 // next sequence number (atomic)
	inc     atomic.Uint64
	name    atomic.Pointer[string]
	crashed atomic.Bool
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
}

// NewSender builds a sender emitting a heartbeat to `to` every interval
// on the given clock. Call Start to begin.
func NewSender(ep transport.Endpoint, to string, interval time.Duration, clk clock.Clock) *Sender {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	if clk == nil {
		clk = clock.NewReal()
	}
	return &Sender{
		ep: ep, to: to, interval: interval, clk: clk,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
}

// Start launches the heartbeat loop in its own goroutine. Also answers
// nothing — senders only transmit; the Receiver handles pings.
func (s *Sender) Start() {
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(s.interval)
		defer ticker.Stop()
		// Send the first heartbeat immediately so monitors see the
		// process as soon as it starts.
		s.emit()
		for {
			select {
			case <-s.stop:
				return
			case <-ticker.C:
				if s.crashed.Load() {
					return
				}
				s.emit()
			}
		}
	}()
}

func (s *Sender) emit() {
	seq := atomic.AddUint64(&s.seq, 1) - 1
	msg := Message{Kind: KindHeartbeat, Seq: seq, Time: s.clk.Now(), Inc: s.inc.Load()}
	if n := s.name.Load(); n != nil {
		msg.Name = *n
	}
	_ = s.ep.Send(s.to, msg.Marshal()) // unreliable channel: best effort
}

// SetName attaches a logical stream name carried in every subsequent
// heartbeat (wire v3): the monitor then tracks this sender under the
// name instead of its source address, so the identity survives socket
// rebinds. Set it before Start so the stream never flip-flops between
// address and name keys. Empty reverts to nameless v2 heartbeats.
func (s *Sender) SetName(name string) {
	if len(name) > MaxNameLen {
		panic("heartbeat: stream name exceeds 255 bytes")
	}
	if name == "" {
		s.name.Store(nil)
		return
	}
	s.name.Store(&name)
}

// Name returns the logical stream name ("" when unnamed).
func (s *Sender) Name() string {
	if n := s.name.Load(); n != nil {
		return *n
	}
	return ""
}

// SetIncarnation sets the incarnation number carried in every heartbeat.
// A process restarting after a crash sets a value greater than its
// previous life's, which resets receiver sequence filters and refutes any
// suspicion of the dead incarnation still circulating in gossip.
func (s *Sender) SetIncarnation(inc uint64) { s.inc.Store(inc) }

// Incarnation returns the current incarnation number.
func (s *Sender) Incarnation() uint64 { return s.inc.Load() }

// Crash simulates a process crash: heartbeats stop abruptly with no
// farewell message, exactly like Fig. 2's fourth case ("after p sends out
// the heartbeat m(i+1), p is crashed").
func (s *Sender) Crash() {
	s.crashed.Store(true)
	s.Stop()
}

// Crashed reports whether Crash was called.
func (s *Sender) Crashed() bool { return s.crashed.Load() }

// Stop terminates the loop gracefully and waits for it to exit.
func (s *Sender) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

// Sent returns the number of heartbeats emitted so far.
func (s *Sender) Sent() uint64 { return atomic.LoadUint64(&s.seq) }
