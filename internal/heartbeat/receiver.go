package heartbeat

import (
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/stats"
	"repro/internal/transport"
)

// Arrival is one decoded heartbeat delivery.
type Arrival struct {
	From string
	Seq  uint64
	Send clock.Time // sender clock (from the payload)
	Recv clock.Time // receiver clock (local arrival)
	// Inc is the sender's incarnation (0 for v1 senders). Sequence
	// numbers restart from 0 within each incarnation.
	Inc uint64
}

// Handler consumes arrivals; it is invoked from the receiver goroutine,
// so it must be fast or hand off.
type Handler func(Arrival)

// Receiver drains an endpoint, decodes heartbeats, filters stale
// (out-of-order or duplicate) deliveries per sender, answers pings, and
// feeds arrivals to the handler — the paper's monitoring process q.
type Receiver struct {
	ep      transport.Endpoint
	clk     clock.Clock
	handler Handler

	mu       sync.Mutex
	last     map[string]incSeq
	received uint64
	stale    uint64
	foreign  func(transport.Inbound)

	done chan struct{}
}

// incSeq is the per-sender stale-filter state: the highest (incarnation,
// sequence) pair accepted so far, ordered lexicographically.
type incSeq struct {
	inc uint64
	seq uint64
}

// NewReceiver wraps the endpoint. The handler may be nil (pings are still
// answered, counters still maintained).
func NewReceiver(ep transport.Endpoint, clk clock.Clock, h Handler) *Receiver {
	if clk == nil {
		clk = clock.NewReal()
	}
	return &Receiver{
		ep: ep, clk: clk, handler: h,
		last: make(map[string]incSeq),
		done: make(chan struct{}),
	}
}

// SetForeign installs a handler for datagrams that are not heartbeat
// messages (wrong magic/version), letting another protocol — e.g. the
// gossip dissemination layer — share this endpoint's socket. Call it
// before Start.
func (r *Receiver) SetForeign(h func(transport.Inbound)) {
	r.mu.Lock()
	r.foreign = h
	r.mu.Unlock()
}

// Start launches the receive loop; it exits when the endpoint closes.
func (r *Receiver) Start() {
	go func() {
		defer close(r.done)
		for in := range r.ep.Recv() {
			r.handle(in)
		}
	}()
}

func (r *Receiver) handle(in transport.Inbound) {
	msg, err := Unmarshal(in.Payload)
	if err != nil {
		r.mu.Lock()
		f := r.foreign
		r.mu.Unlock()
		if f != nil {
			f(in)
		}
		return // foreign datagram: not ours
	}
	switch msg.Kind {
	case KindPing:
		pong := Message{Kind: KindPong, Seq: msg.Seq, Time: msg.Time}
		_ = r.ep.Send(in.From, pong.Marshal())
	case KindHeartbeat:
		recv := r.clk.Now()
		r.mu.Lock()
		last, seen := r.last[in.From]
		// A higher incarnation always supersedes; within one incarnation
		// the detector needs strictly increasing sequence numbers.
		if seen && (msg.Inc < last.inc || (msg.Inc == last.inc && msg.Seq <= last.seq)) {
			r.stale++
			r.mu.Unlock()
			return // duplicate, reordered, or from a dead incarnation
		}
		r.last[in.From] = incSeq{inc: msg.Inc, seq: msg.Seq}
		r.received++
		h := r.handler
		r.mu.Unlock()
		if h != nil {
			h(Arrival{From: in.From, Seq: msg.Seq, Send: msg.Time, Recv: recv, Inc: msg.Inc})
		}
	case KindPong:
		// Pongs are consumed by Prober instances sharing the endpoint;
		// a bare Receiver ignores them.
	}
}

// Wait blocks until the receive loop exits (endpoint closed).
func (r *Receiver) Wait() { <-r.done }

// Forget drops the stale-filter state for a sender. Call it when a peer
// is evicted from the monitoring table; otherwise the filter table grows
// one entry per address ever heard from, unbounded under churn. A sender
// that reappears after Forget is accepted from whatever sequence number
// it resumes at.
func (r *Receiver) Forget(peer string) {
	r.mu.Lock()
	delete(r.last, peer)
	r.mu.Unlock()
}

// Tracked returns how many senders currently have stale-filter state —
// the bound Forget maintains.
func (r *Receiver) Tracked() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.last)
}

// Counters returns the number of accepted and stale heartbeats.
func (r *Receiver) Counters() (received, stale uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.received, r.stale
}

// Prober measures RTT with ping/pong exchanges over its own endpoint —
// the paper's parallel low-frequency ping process.
type Prober struct {
	ep  transport.Endpoint
	to  string
	clk clock.Clock

	mu       sync.Mutex
	rtt      *stats.EWMA
	rttStats stats.Welford
	nextSeq  uint64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewProber probes `to` through ep. Gain 0.2 smooths the RTT estimate.
func NewProber(ep transport.Endpoint, to string, clk clock.Clock) *Prober {
	if clk == nil {
		clk = clock.NewReal()
	}
	return &Prober{
		ep: ep, to: to, clk: clk,
		rtt:  stats.NewEWMA(0.2),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Start sends a ping every interval and consumes pongs until Stop or
// endpoint close.
func (p *Prober) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(p.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		p.sendPing()
		for {
			select {
			case <-p.stop:
				return
			case <-ticker.C:
				p.sendPing()
			case in, ok := <-p.ep.Recv():
				if !ok {
					return
				}
				p.consume(in)
			}
		}
	}()
}

func (p *Prober) sendPing() {
	p.mu.Lock()
	seq := p.nextSeq
	p.nextSeq++
	p.mu.Unlock()
	msg := Message{Kind: KindPing, Seq: seq, Time: p.clk.Now()}
	_ = p.ep.Send(p.to, msg.Marshal())
}

func (p *Prober) consume(in transport.Inbound) {
	msg, err := Unmarshal(in.Payload)
	if err != nil || msg.Kind != KindPong {
		return
	}
	rtt := p.clk.Now().Sub(msg.Time)
	if rtt < 0 {
		return
	}
	p.mu.Lock()
	p.rtt.Add(float64(rtt))
	p.rttStats.Add(float64(rtt))
	p.mu.Unlock()
}

// RTT returns the smoothed round-trip estimate; ok is false before the
// first pong.
func (p *Prober) RTT() (clock.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.rtt.Initialized() {
		return 0, false
	}
	return clock.Duration(p.rtt.Value()), true
}

// Samples returns how many pongs have been received — nonzero proves the
// network is connected, the probe's second purpose in the paper.
func (p *Prober) Samples() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rttStats.N()
}

// Stop terminates the probe loop.
func (p *Prober) Stop() {
	p.once.Do(func() { close(p.stop) })
	<-p.done
}
