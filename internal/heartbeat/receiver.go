package heartbeat

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/transport"
)

// Arrival is one decoded heartbeat delivery.
type Arrival struct {
	// From identifies the stream: the carried logical name for wire-v3
	// heartbeats, the datagram's source address otherwise.
	From string
	Seq  uint64
	Send clock.Time // sender clock (from the payload)
	Recv clock.Time // receiver clock (local arrival)
	// Inc is the sender's incarnation (0 for v1 senders). Sequence
	// numbers restart from 0 within each incarnation.
	Inc uint64
}

// Handler consumes arrivals; it is invoked from the receiver goroutine,
// so it must be fast or hand off.
type Handler func(Arrival)

// Receiver drains an endpoint, decodes heartbeats, filters stale
// (out-of-order or duplicate) deliveries per sender, answers pings, and
// feeds arrivals to the handler — the paper's monitoring process q.
//
// On a multi-queue endpoint (transport.QueuedEndpoint with more than
// one ingest queue) Start runs one drain goroutine per queue, so the
// handler MUST be safe for concurrent use — registry.Registry.Observe
// is. The stale filter is sharded by sender to match: per-sender state
// never crosses shards, so parallel drains contend only when two
// senders hash together, not on one global mutex.
type Receiver struct {
	ep      transport.Endpoint
	clk     clock.Clock
	handler Handler

	filters [filterShards]filterShard
	foreign atomic.Pointer[func(transport.Inbound)]

	// Datagram counters live outside the filter locks: the ingest path
	// bumps them with single atomic adds, and the metrics layer samples
	// them at scrape time without touching any stale-filter lock.
	received    atomic.Uint64
	stale       atomic.Uint64
	foreignSeen atomic.Uint64
	pings       atomic.Uint64
	// decodeSec, when instrumented, observes per-datagram decode+dispatch
	// latency in seconds. Stored atomically so InstrumentMetrics is safe
	// even after Start.
	decodeSec atomic.Pointer[metrics.Histogram]

	done chan struct{}
}

// filterShards stripes the per-sender stale filter (power of two). 64
// stripes keep contention negligible even with a drain goroutine per
// ingest queue hammering the filter from every core.
const filterShards = 64

// filterShard is one stale-filter stripe.
type filterShard struct {
	mu   sync.Mutex
	last map[string]incSeq
}

// incSeq is the per-sender stale-filter state: the highest (incarnation,
// sequence) pair accepted so far, ordered lexicographically. For named
// (wire v3) streams, name holds the canonical interned copy of the
// stream name so the ingest path reuses it instead of allocating a
// string per datagram.
type incSeq struct {
	inc  uint64
	seq  uint64
	name string
}

// NewReceiver wraps the endpoint. The handler may be nil (pings are still
// answered, counters still maintained).
func NewReceiver(ep transport.Endpoint, clk clock.Clock, h Handler) *Receiver {
	if clk == nil {
		clk = clock.NewReal()
	}
	r := &Receiver{
		ep: ep, clk: clk, handler: h,
		done: make(chan struct{}),
	}
	for i := range r.filters {
		r.filters[i].last = make(map[string]incSeq)
	}
	return r
}

// filterFor returns the sender's stale-filter stripe.
func (r *Receiver) filterFor(from string) *filterShard {
	return &r.filters[fnv32a(from)&(filterShards-1)]
}

// SetForeign installs a handler for datagrams that are not heartbeat
// messages (wrong magic/version), letting another protocol — e.g. the
// gossip dissemination layer — share this endpoint's socket. Call it
// before Start. On a multi-queue endpoint the foreign handler, like the
// arrival handler, may be invoked concurrently.
func (r *Receiver) SetForeign(h func(transport.Inbound)) {
	if h == nil {
		r.foreign.Store(nil)
		return
	}
	r.foreign.Store(&h)
}

// Start launches the receive loop — one drain goroutine per ingest
// queue on a multi-queue endpoint, a single goroutine otherwise. It
// exits (and Wait unblocks) when the endpoint closes every queue. Each
// datagram's pooled receive buffer is released after dispatch, so
// handlers must not retain payload slices.
func (r *Receiver) Start() {
	queues := []<-chan transport.Inbound{r.ep.Recv()}
	if qep, ok := r.ep.(transport.QueuedEndpoint); ok {
		if n := qep.RecvQueues(); n > 1 {
			queues = queues[:0]
			for i := 0; i < n; i++ {
				queues = append(queues, qep.RecvQueue(i))
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(len(queues))
	for _, q := range queues {
		go func(q <-chan transport.Inbound) {
			defer wg.Done()
			for in := range q {
				r.handle(in)
				in.Release()
			}
		}(q)
	}
	go func() {
		wg.Wait()
		close(r.done)
	}()
}

func (r *Receiver) handle(in transport.Inbound) {
	var start clock.Time
	hist := r.decodeSec.Load()
	if hist != nil {
		start = r.clk.Now()
	}
	msg, nameRef, err := Decode(in.Payload)
	if err != nil {
		r.foreignSeen.Add(1)
		if f := r.foreign.Load(); f != nil {
			(*f)(in)
		}
		return // foreign datagram: not ours
	}
	switch msg.Kind {
	case KindPing:
		r.pings.Add(1)
		pong := Message{Kind: KindPong, Seq: msg.Seq, Time: msg.Time}
		_ = r.ep.Send(in.From, pong.Marshal())
	case KindHeartbeat:
		recv := r.clk.Now()
		// A v3 heartbeat is identified by its carried stream name, not the
		// datagram's source address: many logical senders can share one
		// socket, and a NAT rebind (new source port, same name) continues
		// the same stream. Nameless (v1/v2) heartbeats key by address.
		from := in.From
		var fs *filterShard
		if len(nameRef) > 0 {
			fs = &r.filters[fnv32aBytes(nameRef)&(filterShards-1)]
		} else {
			fs = r.filterFor(from)
		}
		fs.mu.Lock()
		var last incSeq
		var seen bool
		if len(nameRef) > 0 {
			// string(nameRef) in a map index compiles to an alloc-free
			// lookup; the canonical name string is interned in the entry,
			// so the steady state allocates nothing per datagram.
			last, seen = fs.last[string(nameRef)]
			if seen {
				from = last.name
			} else {
				from = string(nameRef)
			}
		} else {
			last, seen = fs.last[from]
		}
		// A higher incarnation always supersedes; within one incarnation
		// the detector needs strictly increasing sequence numbers.
		if seen && (msg.Inc < last.inc || (msg.Inc == last.inc && msg.Seq <= last.seq)) {
			fs.mu.Unlock()
			r.stale.Add(1)
			return // duplicate, reordered, or from a dead incarnation
		}
		fs.last[from] = incSeq{inc: msg.Inc, seq: msg.Seq, name: from}
		fs.mu.Unlock()
		r.received.Add(1)
		if r.handler != nil {
			r.handler(Arrival{From: from, Seq: msg.Seq, Send: msg.Time, Recv: recv, Inc: msg.Inc})
		}
	case KindPong:
		// Pongs are consumed by Prober instances sharing the endpoint;
		// a bare Receiver ignores them.
	}
	if hist != nil {
		hist.Observe(r.clk.Now().Sub(start).Seconds())
	}
}

// Wait blocks until the receive loop exits (endpoint closed).
func (r *Receiver) Wait() { <-r.done }

// Forget drops the stale-filter state for a sender. Call it when a peer
// is evicted from the monitoring table; otherwise the filter table grows
// one entry per address ever heard from, unbounded under churn. A sender
// that reappears after Forget is accepted from whatever sequence number
// it resumes at.
func (r *Receiver) Forget(peer string) {
	fs := r.filterFor(peer)
	fs.mu.Lock()
	delete(fs.last, peer)
	fs.mu.Unlock()
}

// Tracked returns how many senders currently have stale-filter state —
// the bound Forget maintains. It sums the stripes without a global
// lock, so the count is approximate under concurrent ingest (exact when
// quiescent).
func (r *Receiver) Tracked() int {
	n := 0
	for i := range r.filters {
		fs := &r.filters[i]
		fs.mu.Lock()
		n += len(fs.last)
		fs.mu.Unlock()
	}
	return n
}

// fnv32a hashes a sender address onto a filter stripe (FNV-1a, inlined
// to keep the ingest path allocation-free — same idiom as the
// registry's shard selector).
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// fnv32aBytes is fnv32a over a byte slice (the not-yet-interned v3
// stream name), kept separate so neither path converts.
func fnv32aBytes(b []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= 16777619
	}
	return h
}

// Counters returns the number of accepted and stale heartbeats.
func (r *Receiver) Counters() (received, stale uint64) {
	return r.received.Load(), r.stale.Load()
}

// InstrumentMetrics registers this receiver's instruments in set:
// accepted/stale/foreign datagram counters, pings answered, the current
// stale-filter size, and a decode+dispatch latency histogram observed on
// every datagram. The ingest path stays allocation-free — counters are
// the same atomics the receiver already maintains, sampled at scrape
// time, and the histogram update is two atomic adds plus a CAS.
func (r *Receiver) InstrumentMetrics(set *metrics.Set) {
	set.CounterFunc("sfd_receiver_accepted_total",
		"Heartbeats accepted by the stale filter and handed to the detector pipeline.",
		r.received.Load)
	set.CounterFunc("sfd_receiver_stale_total",
		"Heartbeats dropped as duplicate, reordered, or from a dead incarnation.",
		r.stale.Load)
	set.CounterFunc("sfd_receiver_foreign_total",
		"Datagrams that were not heartbeat protocol (handed to the foreign handler, e.g. gossip).",
		r.foreignSeen.Load)
	set.CounterFunc("sfd_receiver_pings_total",
		"Ping requests answered with pongs.",
		r.pings.Load)
	set.GaugeFunc("sfd_receiver_tracked_streams",
		"Senders with live stale-filter state (bounded by Forget on eviction).",
		func() float64 { return float64(r.Tracked()) })
	r.decodeSec.Store(set.Histogram("sfd_receiver_decode_seconds",
		"Per-datagram decode and dispatch latency.", nil))
}

// proberWindow bounds the outstanding-ping table: a seq this far behind
// the newest ping is considered lost and its (very late) pong ignored.
const proberWindow = 64

// Prober measures RTT with ping/pong exchanges over its own endpoint —
// the paper's parallel low-frequency ping process.
type Prober struct {
	ep  transport.Endpoint
	to  string
	clk clock.Clock

	mu       sync.Mutex
	rtt      *stats.EWMA
	rttStats stats.Welford
	nextSeq  uint64
	// pending holds the send time of each outstanding ping seq. A pong is
	// accepted exactly once per sent seq: duplicates and pongs for unsent
	// or stale seqs are dropped — otherwise a duplicated datagram double-
	// counts Samples() and folds the same RTT into the EWMA twice,
	// skewing the estimate toward whichever exchange the network repeats.
	pending map[uint64]clock.Time
	ignored uint64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewProber probes `to` through ep. Gain 0.2 smooths the RTT estimate.
func NewProber(ep transport.Endpoint, to string, clk clock.Clock) *Prober {
	if clk == nil {
		clk = clock.NewReal()
	}
	return &Prober{
		ep: ep, to: to, clk: clk,
		rtt:     stats.NewEWMA(0.2),
		pending: make(map[uint64]clock.Time),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start sends a ping every interval and consumes pongs until Stop or
// endpoint close.
func (p *Prober) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		defer close(p.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		p.sendPing()
		for {
			select {
			case <-p.stop:
				return
			case <-ticker.C:
				p.sendPing()
			case in, ok := <-p.ep.Recv():
				if !ok {
					return
				}
				p.consume(in)
				in.Release()
			}
		}
	}()
}

func (p *Prober) sendPing() {
	now := p.clk.Now()
	p.mu.Lock()
	seq := p.nextSeq
	p.nextSeq++
	p.pending[seq] = now
	// Expire pings so old their pong window has passed; the table stays
	// bounded even when every pong is lost.
	for s := range p.pending {
		if s+proberWindow <= seq {
			delete(p.pending, s)
		}
	}
	p.mu.Unlock()
	msg := Message{Kind: KindPing, Seq: seq, Time: now}
	_ = p.ep.Send(p.to, msg.Marshal())
}

func (p *Prober) consume(in transport.Inbound) {
	msg, err := Unmarshal(in.Payload)
	if err != nil || msg.Kind != KindPong {
		return
	}
	now := p.clk.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	sent, outstanding := p.pending[msg.Seq]
	if !outstanding {
		p.ignored++ // duplicate, unsent, or stale seq
		return
	}
	delete(p.pending, msg.Seq)
	// RTT from our recorded send time, not the echoed timestamp: a peer
	// cannot skew the estimate by rewriting the payload.
	rtt := now.Sub(sent)
	if rtt < 0 {
		return
	}
	p.rtt.Add(float64(rtt))
	p.rttStats.Add(float64(rtt))
}

// RTT returns the smoothed round-trip estimate; ok is false before the
// first pong.
func (p *Prober) RTT() (clock.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.rtt.Initialized() {
		return 0, false
	}
	return clock.Duration(p.rtt.Value()), true
}

// Samples returns how many pongs have been accepted — nonzero proves the
// network is connected, the probe's second purpose in the paper. Each
// sent ping contributes at most one sample.
func (p *Prober) Samples() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rttStats.N()
}

// Ignored returns how many pongs were dropped as duplicates or as
// answers to unsent/stale pings.
func (p *Prober) Ignored() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ignored
}

// Stop terminates the probe loop.
func (p *Prober) Stop() {
	p.once.Do(func() { close(p.stop) })
	<-p.done
}
