package heartbeat

// Receiver-side tolerance under real impairment: the transport.Endpoint
// contract allows duplicated and truncated payloads, and internal/chaos
// produces both on a live path. The receiver's stale filter and the
// prober's outstanding-seq table must absorb them — these tests push
// actual impaired traffic through the same goroutine pumps sfdmon runs,
// rather than calling the codec with synthetic inputs.

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/transport"
)

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestReceiverToleratesDuplicationAndTruncation(t *testing.T) {
	hub := transport.NewHub(0, 0, 1)
	ctl := chaos.NewController(nil, 7)
	sender := hub.Endpoint("proc")
	monEp := chaos.Wrap(hub.Endpoint("mon"), ctl)
	defer sender.Close()

	var arrivals atomic.Uint64
	var lastSeq atomic.Uint64
	recv := NewReceiver(monEp, nil, func(a Arrival) {
		arrivals.Add(1)
		if prev := lastSeq.Load(); a.Seq <= prev {
			t.Errorf("handler saw non-increasing seq %d after %d", a.Seq, prev)
		}
		lastSeq.Store(a.Seq)
	})
	monEp.Start()
	recv.Start()
	defer monEp.Close()

	// Phase 1: every heartbeat duplicated in flight. The handler must
	// see each sequence exactly once; the copies land in the stale
	// counter.
	dupID, err := ctl.Arm(chaos.Impairment{Kind: chaos.KindDuplicate, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for seq := uint64(1); seq <= n; seq++ {
		msg := Message{Kind: KindHeartbeat, Seq: seq, Time: 0, Inc: 1}
		if err := sender.Send("mon", msg.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "duplicated heartbeats", func() bool {
		received, stale := recv.Counters()
		return received == n && stale == n
	})
	if got := arrivals.Load(); got != n {
		t.Fatalf("handler ran %d times, want %d", got, n)
	}

	// Phase 2: heartbeats truncated mid-payload decode as foreign
	// damage, never as stale or accepted arrivals, and never panic.
	ctl.Disarm(dupID)
	if _, err := ctl.Arm(chaos.Impairment{Kind: chaos.KindTruncate, Rate: 1, Bytes: 14}); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(n + 1); seq <= n+5; seq++ {
		msg := Message{Kind: KindHeartbeat, Seq: seq, Time: 0, Inc: 1}
		if err := sender.Send("mon", msg.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "truncated heartbeats", func() bool {
		return ctl.Counters().Truncated == 5
	})
	// Heal and confirm the stream resumes where it left off.
	ctl.DisarmAll()
	final := Message{Kind: KindHeartbeat, Seq: n + 6, Time: 0, Inc: 1}
	if err := sender.Send("mon", final.Marshal()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-heal heartbeat", func() bool {
		received, _ := recv.Counters()
		return received == n+1
	})
	if got := arrivals.Load(); got != n+1 {
		t.Fatalf("handler ran %d times, want %d (truncated damage leaked through)", got, n+1)
	}
}

func TestProberDedupUnderDuplicationImpairment(t *testing.T) {
	hub := transport.NewHub(0, 0, 1)
	ctl := chaos.NewController(nil, 11)

	// The responder answers pings on a clean endpoint.
	responderEp := hub.Endpoint("svc")
	responder := NewReceiver(responderEp, nil, nil)
	responder.Start()
	defer responderEp.Close()

	// The prober's endpoint duplicates every inbound pong.
	probeEp := chaos.Wrap(hub.Endpoint("probe"), ctl)
	if _, err := ctl.Arm(chaos.Impairment{Kind: chaos.KindDuplicate, Rate: 1, Direction: chaos.DirIn}); err != nil {
		t.Fatal(err)
	}
	probeEp.Start()
	defer probeEp.Close()

	p := NewProber(probeEp, "svc", nil)
	p.Start(2 * time.Millisecond)
	defer p.Stop()

	waitFor(t, "probe samples", func() bool { return p.Samples() >= 10 })
	samples, ignored := p.Samples(), p.Ignored()
	if ignored < uint64(samples)/2 {
		t.Fatalf("ignored %d duplicate pongs for %d samples; dedup not engaged", ignored, samples)
	}
	if _, ok := p.RTT(); !ok {
		t.Fatal("no RTT estimate despite accepted pongs")
	}
}
