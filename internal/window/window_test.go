package window

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRingPushAndOrder(t *testing.T) {
	r := NewRing[int](3)
	if r.Cap() != 3 || r.Len() != 0 || r.Full() {
		t.Fatal("fresh ring state wrong")
	}
	for i := 1; i <= 3; i++ {
		if _, ev := r.Push(i); ev {
			t.Fatal("eviction before full")
		}
	}
	if !r.Full() {
		t.Fatal("ring should be full")
	}
	old, ev := r.Push(4)
	if !ev || old != 1 {
		t.Fatalf("evicted %v,%v, want 1,true", old, ev)
	}
	want := []int{2, 3, 4}
	for i, w := range want {
		if r.At(i) != w {
			t.Fatalf("At(%d) = %d, want %d", i, r.At(i), w)
		}
	}
}

func TestRingNewestOldest(t *testing.T) {
	r := NewRing[string](2)
	if _, ok := r.Newest(); ok {
		t.Fatal("empty Newest should be !ok")
	}
	if _, ok := r.Oldest(); ok {
		t.Fatal("empty Oldest should be !ok")
	}
	r.Push("a")
	r.Push("b")
	r.Push("c")
	if n, _ := r.Newest(); n != "c" {
		t.Fatalf("Newest = %q", n)
	}
	if o, _ := r.Oldest(); o != "b" {
		t.Fatalf("Oldest = %q", o)
	}
}

func TestRingDoAndSnapshot(t *testing.T) {
	r := NewRing[int](4)
	for i := 0; i < 6; i++ {
		r.Push(i)
	}
	var got []int
	r.Do(func(x int) { got = append(got, x) })
	snap := r.Snapshot()
	want := []int{2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] || snap[i] != want[i] {
			t.Fatalf("Do=%v Snapshot=%v, want %v", got, snap, want)
		}
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing[int](2)
	r.Push(1)
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset did not empty ring")
	}
	r.Push(9)
	if v, _ := r.Oldest(); v != 9 {
		t.Fatal("ring unusable after Reset")
	}
}

func TestRingAtPanics(t *testing.T) {
	r := NewRing[int](2)
	r.Push(1)
	for _, i := range []int{-1, 1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d) did not panic", i)
				}
			}()
			r.At(i)
		}()
	}
}

func TestRingZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewRing[int](0)
}

func TestRingFIFOProperty(t *testing.T) {
	// Property: after pushing any sequence into a ring of capacity c, the
	// ring holds exactly the last min(len, c) items in order.
	f := func(items []int, capRaw uint8) bool {
		c := int(capRaw%16) + 1
		r := NewRing[int](c)
		for _, x := range items {
			r.Push(x)
		}
		n := len(items)
		if n > c {
			n = c
		}
		if r.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if r.At(i) != items[len(items)-n+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplesMeanVariance(t *testing.T) {
	s := NewSamples(4)
	if s.Mean() != 0 || s.Variance() != 0 || s.StdDev() != 0 {
		t.Fatal("empty Samples stats nonzero")
	}
	for _, x := range []float64{2, 4, 6, 8} {
		s.Push(x)
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Variance() != 5 {
		t.Fatalf("Variance = %v, want 5", s.Variance())
	}
	// Evict 2, push 10: window is {4,6,8,10}.
	s.Push(10)
	if s.Mean() != 7 {
		t.Fatalf("Mean after eviction = %v, want 7", s.Mean())
	}
	if s.Sum() != 28 {
		t.Fatalf("Sum = %v, want 28", s.Sum())
	}
}

func TestSamplesFullFlag(t *testing.T) {
	s := NewSamples(2)
	if s.Full() {
		t.Fatal("empty window reports full")
	}
	s.Push(1)
	s.Push(2)
	if !s.Full() {
		t.Fatal("window should be full")
	}
	if s.Cap() != 2 || s.Len() != 2 {
		t.Fatal("Cap/Len wrong")
	}
}

func TestSamplesAccessors(t *testing.T) {
	s := NewSamples(3)
	if _, ok := s.Newest(); ok {
		t.Fatal("empty Newest ok")
	}
	if _, ok := s.Oldest(); ok {
		t.Fatal("empty Oldest ok")
	}
	s.Push(1)
	s.Push(2)
	if v, _ := s.Newest(); v != 2 {
		t.Fatal("Newest wrong")
	}
	if v, _ := s.Oldest(); v != 1 {
		t.Fatal("Oldest wrong")
	}
	if s.At(0) != 1 || s.At(1) != 2 {
		t.Fatal("At wrong")
	}
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0] != 1 {
		t.Fatal("Snapshot wrong")
	}
}

func TestSamplesResetAndRecompute(t *testing.T) {
	s := NewSamples(3)
	s.Push(5)
	s.Reset()
	if s.Len() != 0 || s.Sum() != 0 {
		t.Fatal("Reset incomplete")
	}
	for _, x := range []float64{1, 2, 3} {
		s.Push(x)
	}
	before := s.Mean()
	s.Recompute()
	if s.Mean() != before {
		t.Fatal("Recompute changed the mean")
	}
}

func TestSamplesMatchesBatchProperty(t *testing.T) {
	// Property: window stats equal batch stats of the retained suffix,
	// even after many evictions.
	f := func(raw []int16, capRaw uint8) bool {
		c := int(capRaw%32) + 1
		s := NewSamples(c)
		for _, v := range raw {
			s.Push(float64(v))
		}
		n := len(raw)
		if n > c {
			n = c
		}
		if s.Len() != n {
			return false
		}
		if n == 0 {
			return s.Mean() == 0
		}
		var sum float64
		tail := raw[len(raw)-n:]
		for _, v := range tail {
			sum += float64(v)
		}
		mean := sum / float64(n)
		var ss float64
		for _, v := range tail {
			d := float64(v) - mean
			ss += d * d
		}
		wantVar := ss / float64(n)
		return math.Abs(s.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(s.Variance()-wantVar) < 1e-3*(1+wantVar)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplesVarianceNeverNegative(t *testing.T) {
	s := NewSamples(8)
	// Near-identical large values maximize cancellation error.
	for i := 0; i < 1000; i++ {
		s.Push(1e12 + float64(i%2)*1e-3)
	}
	if s.Variance() < 0 {
		t.Fatal("variance went negative")
	}
	if s.StdDev() < 0 {
		t.Fatal("stddev went negative")
	}
}

func BenchmarkSamplesPush(b *testing.B) {
	s := NewSamples(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Push(float64(i))
	}
}

func BenchmarkRingPush(b *testing.B) {
	r := NewRing[int64](1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Push(int64(i))
	}
}
