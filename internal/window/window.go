// Package window provides fixed-capacity sliding windows: a generic ring
// buffer and an arrival-sample window that maintains running sums so the
// detectors can compute window statistics in O(1) per heartbeat.
//
// All four detectors in the paper maintain "a sliding window [with] the
// most recent samples of the arrival time" (§IV); the experiments fix the
// window size at WS = 1000 and §V-C studies the effect of varying it.
package window

import "math"

// Ring is a fixed-capacity FIFO ring buffer. Pushing onto a full ring
// evicts the oldest element (returned via Push's second result).
type Ring[T any] struct {
	buf   []T
	head  int // index of oldest element
	count int
}

// NewRing returns a ring buffer with the given capacity (must be > 0).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic("window: ring capacity must be positive")
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Cap returns the fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the current number of elements.
func (r *Ring[T]) Len() int { return r.count }

// Full reports whether the ring is at capacity.
func (r *Ring[T]) Full() bool { return r.count == len(r.buf) }

// Push appends x. If the ring was full the evicted oldest element is
// returned with evicted=true.
func (r *Ring[T]) Push(x T) (old T, evicted bool) {
	if r.count == len(r.buf) {
		old = r.buf[r.head]
		r.buf[r.head] = x
		r.head = (r.head + 1) % len(r.buf)
		return old, true
	}
	r.buf[(r.head+r.count)%len(r.buf)] = x
	r.count++
	return old, false
}

// At returns the i-th element counting from the oldest (0) to the newest
// (Len()-1). It panics on out-of-range access.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.count {
		panic("window: ring index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// Newest returns the most recently pushed element; ok is false when empty.
func (r *Ring[T]) Newest() (x T, ok bool) {
	if r.count == 0 {
		return x, false
	}
	return r.At(r.count - 1), true
}

// Oldest returns the least recently pushed element; ok is false when empty.
func (r *Ring[T]) Oldest() (x T, ok bool) {
	if r.count == 0 {
		return x, false
	}
	return r.At(0), true
}

// Do calls fn for each element from oldest to newest.
func (r *Ring[T]) Do(fn func(x T)) {
	for i := 0; i < r.count; i++ {
		fn(r.At(i))
	}
}

// Snapshot copies the contents, oldest first.
func (r *Ring[T]) Snapshot() []T {
	out := make([]T, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.At(i)
	}
	return out
}

// Reset empties the ring.
func (r *Ring[T]) Reset() {
	r.head, r.count = 0, 0
}

// Samples is a sliding window over float64 samples that maintains the
// running sum and sum of squares, giving O(1) mean and variance. The φ
// detector uses it for inter-arrival statistics; Chen-style estimators
// use the O(1) sum for the EA recurrence.
type Samples struct {
	ring *Ring[float64]
	sum  float64
	sum2 float64
}

// NewSamples returns a sample window with the given capacity.
func NewSamples(capacity int) *Samples {
	return &Samples{ring: NewRing[float64](capacity)}
}

// Push adds a sample, evicting the oldest when full.
func (s *Samples) Push(x float64) {
	old, evicted := s.ring.Push(x)
	if evicted {
		s.sum -= old
		s.sum2 -= old * old
	}
	s.sum += x
	s.sum2 += x * x
}

// Len returns the number of stored samples.
func (s *Samples) Len() int { return s.ring.Len() }

// Cap returns the window capacity.
func (s *Samples) Cap() int { return s.ring.Cap() }

// Full reports whether the window is at capacity (the paper only begins
// measuring "after the sliding window is full").
func (s *Samples) Full() bool { return s.ring.Full() }

// Sum returns the running sum of the stored samples.
func (s *Samples) Sum() float64 { return s.sum }

// Mean returns the window mean (0 when empty).
func (s *Samples) Mean() float64 {
	if s.ring.Len() == 0 {
		return 0
	}
	return s.sum / float64(s.ring.Len())
}

// Variance returns the window population variance, clamped at 0 against
// floating-point cancellation.
func (s *Samples) Variance() float64 {
	n := float64(s.ring.Len())
	if n < 2 {
		return 0
	}
	m := s.sum / n
	v := s.sum2/n - m*m
	if v < 0 {
		v = 0
	}
	return v
}

// StdDev returns the window population standard deviation.
func (s *Samples) StdDev() float64 {
	v := s.Variance()
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// At returns the i-th sample, oldest first.
func (s *Samples) At(i int) float64 { return s.ring.At(i) }

// Newest returns the most recent sample; ok is false when empty.
func (s *Samples) Newest() (float64, bool) { return s.ring.Newest() }

// Oldest returns the oldest sample; ok is false when empty.
func (s *Samples) Oldest() (float64, bool) { return s.ring.Oldest() }

// Snapshot copies the samples, oldest first.
func (s *Samples) Snapshot() []float64 { return s.ring.Snapshot() }

// Reset empties the window.
func (s *Samples) Reset() {
	s.ring.Reset()
	s.sum, s.sum2 = 0, 0
}

// Recompute rebuilds the running sums from the stored samples, shedding
// accumulated floating-point drift. Long-lived detectors (weeks of
// heartbeats, as in the paper's JP↔CH run) call this periodically.
func (s *Samples) Recompute() {
	s.sum, s.sum2 = 0, 0
	s.ring.Do(func(x float64) {
		s.sum += x
		s.sum2 += x * x
	})
}
