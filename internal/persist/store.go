package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/clock"
)

// ErrNoSnapshot reports a state directory with no usable snapshot — the
// normal first-boot condition, distinct from corruption.
var ErrNoSnapshot = errors.New("persist: no snapshot available")

// Store manages the on-disk layout of a state directory: epoch-numbered
// snapshot/journal pairs
//
//	snap-00000007.full      full snapshot, single trailing checksum
//	snap-00000007.journal   deltas since that snapshot, per-record CRC
//
// Every write lands in a temp file first, is fsynced, and is renamed
// into place (with a directory fsync) so a crash at any instant leaves
// either the old file or the new one — never a torn one. The journal is
// the exception by design: it is append-only, and its per-record
// checksums confine a torn append to the tail.
//
// Store is not safe for concurrent use; the Checkpointer serializes
// access to it.
type Store struct {
	dir    string
	retain int

	epoch      uint64   // current epoch (0 until first rotation)
	journal    *os.File // open journal for the current epoch
	journalLen int64
}

// OpenStore opens (creating if needed) a state directory. retain is the
// number of snapshot epochs to keep; values < 2 are raised to 2 so one
// fully valid fallback pair always survives a crash mid-rotation.
func OpenStore(dir string, retain int) (*Store, error) {
	if retain < 2 {
		retain = 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create state dir: %w", err)
	}
	s := &Store{dir: dir, retain: retain}
	if epochs, err := s.epochs(); err == nil && len(epochs) > 0 {
		s.epoch = epochs[len(epochs)-1]
	}
	return s, nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// Epoch returns the newest epoch present on disk (0 if none).
func (s *Store) Epoch() uint64 { return s.epoch }

// epochs lists the snapshot epochs present on disk, ascending.
func (s *Store) epochs() ([]uint64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".full") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".full"), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func (s *Store) fullPath(epoch uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%08d.full", epoch))
}

func (s *Store) journalPath(epoch uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%08d.journal", epoch))
}

// WriteSnapshot persists snap as a new epoch (assigned by the store and
// written back into snap.Epoch), atomically: temp file, fsync, rename,
// directory fsync. It then opens a fresh journal for the new epoch and
// prunes epochs beyond the retention count. The previous epoch's pair is
// left intact until pruned, so a crash anywhere in this sequence
// recovers from one epoch or the other. Returns the encoded size.
func (s *Store) WriteSnapshot(snap *Snapshot) (int, error) {
	epoch := s.epoch + 1
	snap.Epoch = epoch
	data := EncodeSnapshot(snap)

	if err := atomicWrite(s.fullPath(epoch), data); err != nil {
		return 0, err
	}
	if err := s.openJournal(epoch, snap.TakenAt); err != nil {
		return 0, err
	}
	s.epoch = epoch
	s.prune()
	return len(data), nil
}

// openJournal closes the current journal (if any) and starts the journal
// file for epoch. The header is written through the same atomic path as
// snapshots; appends then go straight to the renamed file.
func (s *Store) openJournal(epoch uint64, at clock.Time) error {
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	path := s.journalPath(epoch)
	if err := atomicWrite(path, EncodeJournalHeader(epoch, at)); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: reopen journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("persist: stat journal: %w", err)
	}
	s.journal, s.journalLen = f, st.Size()
	return nil
}

// AppendDeltas appends the deltas to the current epoch's journal and
// fsyncs once for the batch. It requires a prior WriteSnapshot (the
// journal is meaningless without the snapshot it amends).
func (s *Store) AppendDeltas(deltas []Delta) error {
	if len(deltas) == 0 {
		return nil
	}
	if s.journal == nil {
		return errors.New("persist: no open journal (write a snapshot first)")
	}
	var buf []byte
	for _, d := range deltas {
		buf = AppendDeltaRecord(buf, d)
	}
	n, err := s.journal.Write(buf)
	s.journalLen += int64(n)
	if err != nil {
		return fmt.Errorf("persist: append journal: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		return fmt.Errorf("persist: sync journal: %w", err)
	}
	return nil
}

// JournalLen returns the current journal's size in bytes (0 if none) —
// the rotation trigger input.
func (s *Store) JournalLen() int64 { return s.journalLen }

// Load reads the newest valid snapshot/journal pair, newest epoch first.
// A corrupt or unreadable snapshot falls back to the next older epoch; a
// corrupt journal degrades to the snapshot alone (its valid prefix, if
// any, still applies). Returns ErrNoSnapshot when nothing usable exists.
func (s *Store) Load() (*Snapshot, []Delta, error) {
	epochs, err := s.epochs()
	if err != nil {
		return nil, nil, fmt.Errorf("persist: scan state dir: %w", err)
	}
	var lastErr error
	for i := len(epochs) - 1; i >= 0; i-- {
		epoch := epochs[i]
		data, err := os.ReadFile(s.fullPath(epoch))
		if err != nil {
			lastErr = err
			continue
		}
		snap, err := DecodeSnapshot(data)
		if err != nil {
			lastErr = fmt.Errorf("epoch %d: %w", epoch, err)
			continue
		}
		var deltas []Delta
		if jdata, err := os.ReadFile(s.journalPath(epoch)); err == nil {
			if jepoch, ds, _, err := DecodeJournal(jdata); err == nil && jepoch == epoch {
				deltas = ds
			}
		}
		return snap, deltas, nil
	}
	if lastErr != nil {
		return nil, nil, fmt.Errorf("%w (last error: %v)", ErrNoSnapshot, lastErr)
	}
	return nil, nil, ErrNoSnapshot
}

// prune removes epochs beyond the retention count, oldest first. Errors
// are ignored: stale files cost disk, not correctness.
func (s *Store) prune() {
	epochs, err := s.epochs()
	if err != nil || len(epochs) <= s.retain {
		return
	}
	for _, e := range epochs[:len(epochs)-s.retain] {
		os.Remove(s.fullPath(e))
		os.Remove(s.journalPath(e))
	}
}

// Close releases the open journal handle (final flushes happen through
// the Checkpointer before this).
func (s *Store) Close() error {
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

// atomicWrite writes data to path via a same-directory temp file, fsync,
// rename, and directory fsync.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-snap-*")
	if err != nil {
		return fmt.Errorf("persist: create temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("persist: write temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
