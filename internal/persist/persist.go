// Package persist provides crash-safe state persistence for the
// monitor: versioned, checksummed snapshots of the registry's per-stream
// detector state and the gossip opinion tables, written atomically by a
// dedicated checkpoint goroutine (periodic full snapshots plus a batched
// incremental delta journal), and a recovery path that always restores
// the newest *valid* snapshot/journal pair or falls back to cold start —
// never a half-written or corrupted one.
//
// The failure-detection layer is only as available as the monitor
// process itself: Dobre et al. argue the detection architecture must
// tolerate its own failures, and production cloud monitors restart
// routinely (Cotroneo et al.). Without persistence a restart discards
// every stream's estimation window and tuned safety margin, so the
// whole fleet re-enters warmup and the mistake rate spikes exactly when
// the operator can least afford it. With it, a restarting monitor
// resumes from the last checkpoint and rewarms gracefully.
//
// Nothing in this package runs on the heartbeat ingest hot path: full
// snapshots are pulled by the checkpointer goroutine through a
// registry-provided export callback, and deltas are drained from the
// registry's existing failure-event bus.
package persist

import (
	"repro/internal/clock"
	"repro/internal/core"
)

// Phase mirrors the registry's stream lifecycle position in serialized
// form (the registry's own phase type stays unexported).
const (
	PhaseTrusted uint8 = iota
	PhaseSuspected
	PhaseOffline
)

// Snapshot is a full capture of monitor state at one instant. All
// clock.Time fields are in the capturing process's clock domain; Rebase
// shifts them into the restoring process's domain before import.
type Snapshot struct {
	// Epoch is the store-assigned snapshot generation (0 until written).
	Epoch uint64
	// TakenAt is the capture instant on the monitor's monotonic clock.
	TakenAt clock.Time
	// WallNano is the capture instant as wall-clock unix nanoseconds —
	// the anchor that lets a restarting process compute its downtime.
	WallNano int64

	Streams []StreamRecord
	Gossip  *GossipRecord
}

// StreamRecord is one monitored stream's persisted state: the registry
// table row plus (for self-tuning detectors) the detector state.
type StreamRecord struct {
	Peer         string
	Inc          uint64
	Phase        uint8
	Seen         bool
	LastSeq      uint64
	LastArrival  clock.Time
	SuspectSince clock.Time

	Heartbeats  uint64
	Stale       uint64
	Mistakes    uint64
	MistakeTime clock.Duration

	// Det is the stream's exported detector state; nil when the detector
	// does not support export (it restarts cold on restore).
	Det *core.SFDState
}

// MonitorWeight is one peer monitor's last self-reported accuracy weight.
type MonitorWeight struct {
	Monitor string
	Weight  float64
}

// OpinionRecord is one remote opinion held in the gossip table: what
// Monitor last said about Subject, versioned by the monitor's digest
// sequence number.
type OpinionRecord struct {
	Subject string
	Monitor string
	State   uint8
	Inc     uint64
	Level   float64
	Seq     uint64
	At      clock.Time
}

// VerdictRecord is one published non-trusted global verdict.
type VerdictRecord struct {
	Subject string
	State   uint8
}

// GossipRecord is the gossip layer's persisted state. Restoring Seq is
// what keeps a restarted monitor's digests monotonic: peers drop digests
// with regressed sequence numbers, so a monitor that restarted at seq 0
// would be mute until it caught up with its old life.
type GossipRecord struct {
	ID          string
	MistakeRate float64
	Seq         uint64
	Weights     []MonitorWeight
	Opinions    []OpinionRecord
	Verdicts    []VerdictRecord
	Suspects    []string
}

// Delta kinds recorded in the journal between full snapshots.
const (
	// DeltaPhase records a stream lifecycle transition (trust/suspect/
	// offline) with the incarnation it applied to.
	DeltaPhase uint8 = iota + 1
	// DeltaEvict records a stream's removal from the registry table.
	DeltaEvict
)

// Delta is one incremental journal entry, derived from the registry's
// failure-event bus — the transitions that must survive a crash between
// full snapshots so restored phases and incarnations stay fresh.
type Delta struct {
	Kind  uint8
	Peer  string
	At    clock.Time
	Inc   uint64
	Phase uint8
}

// Rebase shifts every time field by d, mapping the snapshot from the
// capturing process's clock domain into the restoring one's. Zero times
// stay zero: they are "unset" sentinels, not instants.
func (s *Snapshot) Rebase(d clock.Duration) {
	s.TakenAt = rebase(s.TakenAt, d)
	for i := range s.Streams {
		r := &s.Streams[i]
		r.LastArrival = rebase(r.LastArrival, d)
		r.SuspectSince = rebase(r.SuspectSince, d)
		if r.Det != nil {
			r.Det.FP = rebase(r.Det.FP, d)
			r.Det.LastSend = rebase(r.Det.LastSend, d)
			for j := range r.Det.Window {
				r.Det.Window[j].Recv = rebase(r.Det.Window[j].Recv, d)
			}
		}
	}
	if s.Gossip != nil {
		for i := range s.Gossip.Opinions {
			s.Gossip.Opinions[i].At = rebase(s.Gossip.Opinions[i].At, d)
		}
	}
}

func rebase(t clock.Time, d clock.Duration) clock.Time {
	if t == 0 {
		return 0
	}
	return t.Add(d)
}

// Apply folds journal deltas into the snapshot's stream table, newest
// last: phase transitions update phase/incarnation/suspicion instant
// (creating a minimal record for streams registered after the snapshot,
// so their incarnations cannot regress), and evictions remove rows.
// Delta times are rebased with the same shift as the snapshot before
// calling Apply.
func (s *Snapshot) Apply(deltas []Delta) {
	if len(deltas) == 0 {
		return
	}
	idx := make(map[string]int, len(s.Streams))
	for i := range s.Streams {
		idx[s.Streams[i].Peer] = i
	}
	for _, d := range deltas {
		switch d.Kind {
		case DeltaPhase:
			i, ok := idx[d.Peer]
			if !ok {
				s.Streams = append(s.Streams, StreamRecord{Peer: d.Peer})
				i = len(s.Streams) - 1
				idx[d.Peer] = i
			}
			r := &s.Streams[i]
			r.Phase = d.Phase
			r.Seen = true
			if d.Inc > r.Inc {
				r.Inc = d.Inc
			}
			if d.Phase == PhaseSuspected {
				r.SuspectSince = d.At
			}
		case DeltaEvict:
			if i, ok := idx[d.Peer]; ok {
				last := len(s.Streams) - 1
				s.Streams[i] = s.Streams[last]
				s.Streams = s.Streams[:last]
				delete(idx, d.Peer)
				if i < last {
					idx[s.Streams[i].Peer] = i
				}
			}
		}
	}
}

// RebaseDeltas shifts delta times by d (same mapping as Snapshot.Rebase).
func RebaseDeltas(deltas []Delta, d clock.Duration) {
	for i := range deltas {
		deltas[i].At = rebase(deltas[i].At, d)
	}
}
