package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
)

// Wire format (all integers big-endian, matching the heartbeat and
// gossip codecs):
//
//	header:  magic "SFDP" | version u16 | kind u8 | reserved u8
//
//	snapshot (kind 1):
//	  header | epoch u64 | takenAt i64 | wallNano i64
//	  | streamCount u32 | stream*
//	  | gossipFlag u8 | [gossip]
//	  | crc32 u32              (IEEE, over everything before it)
//
//	stream:  peer str | inc u64 | phase u8 | seen u8 | lastSeq u64
//	         | lastArrival i64 | suspectSince i64
//	         | heartbeats u64 | stale u64 | mistakes u64 | mistakeTime i64
//	         | detFlag u8 | [det]
//	det:     margin i64 | fp i64 | state u8 | slotIndex u32 | lastSeq u64
//	         | lastSend i64 | lastDelay i64 | haveSeq u8
//	         | gapAvg f64 | gapAvgOK u8 | stepScale f64 | lastDir u8
//	         | sampleCount u32 | (seq u64, recv i64)*
//	gossip:  id str | mistakeRate f64 | seq u64
//	         | weightCount u32 | (mon str, w f64)*
//	         | opinionCount u32 | (subj str, mon str, state u8, inc u64,
//	           level f64, seq u64, at i64)*
//	         | verdictCount u32 | (subj str, state u8)*
//	         | suspectCount u32 | str*
//	str:     len u16 | bytes    (len <= maxNameLen)
//
//	journal (kind 2):
//	  header | epoch u64 | createdAt i64 | record*
//	record:  payloadLen u32 | crc32(payload) u32 | payload
//	payload: deltaKind u8 | at i64 | inc u64 | phase u8 | peer str
//
// A snapshot is valid only as a whole (single trailing checksum: a
// torn write invalidates the file and recovery falls back to the
// previous epoch). Journal records are checksummed individually so a
// crash mid-append loses only the torn tail — the valid prefix still
// applies.
const (
	version      = 1
	kindSnapshot = 1
	kindJournal  = 2
	maxNameLen   = 512
	headerLen    = 4 + 2 + 1 + 1

	// Decode-side sanity bounds: a corrupted count must not drive a huge
	// allocation before the per-entry bounds checks reject it.
	maxStreams = 1 << 22
	maxSamples = 1 << 20
	maxEntries = 1 << 22
)

var magic = [4]byte{'S', 'F', 'D', 'P'}

// Decode errors. ErrCorrupt covers checksum mismatches and truncation;
// ErrVersion unknown format versions — both mean "fall back to an older
// epoch or cold start", never a panic.
var (
	ErrCorrupt = errors.New("persist: corrupt or truncated state file")
	ErrVersion = errors.New("persist: unsupported state format version")
)

// EncodeSnapshot serializes s (checksummed, ready to write to disk).
func EncodeSnapshot(s *Snapshot) []byte {
	b := make([]byte, 0, 64+len(s.Streams)*96)
	b = appendHeader(b, kindSnapshot)
	b = binary.BigEndian.AppendUint64(b, s.Epoch)
	b = binary.BigEndian.AppendUint64(b, uint64(s.TakenAt))
	b = binary.BigEndian.AppendUint64(b, uint64(s.WallNano))
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Streams)))
	for i := range s.Streams {
		b = appendStream(b, &s.Streams[i])
	}
	if s.Gossip != nil {
		b = append(b, 1)
		b = appendGossip(b, s.Gossip)
	} else {
		b = append(b, 0)
	}
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// DecodeSnapshot parses and validates a snapshot file image.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if err := checkHeader(data, kindSnapshot); err != nil {
		return nil, err
	}
	if len(data) < headerLen+4 {
		return nil, ErrCorrupt
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	r := reader{buf: body, off: headerLen}
	s := &Snapshot{
		Epoch:    r.u64(),
		TakenAt:  clock.Time(r.u64()),
		WallNano: int64(r.u64()),
	}
	n := r.u32()
	if n > maxStreams || uint64(n)*2 > uint64(len(body)) {
		return nil, fmt.Errorf("%w: implausible stream count %d", ErrCorrupt, n)
	}
	s.Streams = make([]StreamRecord, 0, n)
	for i := uint32(0); i < n; i++ {
		rec, err := readStream(&r)
		if err != nil {
			return nil, err
		}
		s.Streams = append(s.Streams, rec)
	}
	if r.u8() == 1 {
		g, err := readGossip(&r)
		if err != nil {
			return nil, err
		}
		s.Gossip = g
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-r.off)
	}
	return s, nil
}

func appendStream(b []byte, rec *StreamRecord) []byte {
	b = appendStr(b, rec.Peer)
	b = binary.BigEndian.AppendUint64(b, rec.Inc)
	b = append(b, rec.Phase, boolByte(rec.Seen))
	b = binary.BigEndian.AppendUint64(b, rec.LastSeq)
	b = binary.BigEndian.AppendUint64(b, uint64(rec.LastArrival))
	b = binary.BigEndian.AppendUint64(b, uint64(rec.SuspectSince))
	b = binary.BigEndian.AppendUint64(b, rec.Heartbeats)
	b = binary.BigEndian.AppendUint64(b, rec.Stale)
	b = binary.BigEndian.AppendUint64(b, rec.Mistakes)
	b = binary.BigEndian.AppendUint64(b, uint64(rec.MistakeTime))
	if rec.Det == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	d := rec.Det
	b = binary.BigEndian.AppendUint64(b, uint64(d.Margin))
	b = binary.BigEndian.AppendUint64(b, uint64(d.FP))
	b = append(b, uint8(d.State))
	b = binary.BigEndian.AppendUint32(b, uint32(d.SlotIndex))
	b = binary.BigEndian.AppendUint64(b, d.LastSeq)
	b = binary.BigEndian.AppendUint64(b, uint64(d.LastSend))
	b = binary.BigEndian.AppendUint64(b, uint64(d.LastDelay))
	b = append(b, boolByte(d.HaveSeq))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(d.GapAvg))
	b = append(b, boolByte(d.GapAvgOK))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(d.StepScale))
	b = append(b, uint8(d.LastDir))
	b = binary.BigEndian.AppendUint32(b, uint32(len(d.Window)))
	for _, w := range d.Window {
		b = binary.BigEndian.AppendUint64(b, w.Seq)
		b = binary.BigEndian.AppendUint64(b, uint64(w.Recv))
	}
	return b
}

func readStream(r *reader) (StreamRecord, error) {
	rec := StreamRecord{
		Peer:         r.str(),
		Inc:          r.u64(),
		Phase:        r.u8(),
		Seen:         r.u8() == 1,
		LastSeq:      r.u64(),
		LastArrival:  clock.Time(r.u64()),
		SuspectSince: clock.Time(r.u64()),
		Heartbeats:   r.u64(),
		Stale:        r.u64(),
		Mistakes:     r.u64(),
		MistakeTime:  clock.Duration(r.u64()),
	}
	if rec.Phase > PhaseOffline {
		return rec, fmt.Errorf("%w: phase %d out of range", ErrCorrupt, rec.Phase)
	}
	if r.u8() == 1 {
		d := &core.SFDState{
			Margin:    clock.Duration(r.u64()),
			FP:        clock.Time(r.u64()),
			State:     core.State(r.u8()),
			SlotIndex: int(r.u32()),
			LastSeq:   r.u64(),
			LastSend:  clock.Time(r.u64()),
			LastDelay: clock.Duration(r.u64()),
			HaveSeq:   r.u8() == 1,
			GapAvg:    math.Float64frombits(r.u64()),
			GapAvgOK:  r.u8() == 1,
			StepScale: math.Float64frombits(r.u64()),
			LastDir:   int8(r.u8()),
		}
		n := r.u32()
		if n > maxSamples || int(n)*16 > r.remaining() {
			return rec, fmt.Errorf("%w: implausible sample count %d", ErrCorrupt, n)
		}
		d.Window = make([]detector.ArrivalSample, 0, n)
		for i := uint32(0); i < n; i++ {
			d.Window = append(d.Window, detector.ArrivalSample{
				Seq: r.u64(), Recv: clock.Time(r.u64()),
			})
		}
		rec.Det = d
	}
	return rec, r.err
}

func appendGossip(b []byte, g *GossipRecord) []byte {
	b = appendStr(b, g.ID)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(g.MistakeRate))
	b = binary.BigEndian.AppendUint64(b, g.Seq)
	b = binary.BigEndian.AppendUint32(b, uint32(len(g.Weights)))
	for _, w := range g.Weights {
		b = appendStr(b, w.Monitor)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(w.Weight))
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(g.Opinions)))
	for _, o := range g.Opinions {
		b = appendStr(b, o.Subject)
		b = appendStr(b, o.Monitor)
		b = append(b, o.State)
		b = binary.BigEndian.AppendUint64(b, o.Inc)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(o.Level))
		b = binary.BigEndian.AppendUint64(b, o.Seq)
		b = binary.BigEndian.AppendUint64(b, uint64(o.At))
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(g.Verdicts)))
	for _, v := range g.Verdicts {
		b = appendStr(b, v.Subject)
		b = append(b, v.State)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(g.Suspects)))
	for _, s := range g.Suspects {
		b = appendStr(b, s)
	}
	return b
}

func readGossip(r *reader) (*GossipRecord, error) {
	g := &GossipRecord{
		ID:          r.str(),
		MistakeRate: math.Float64frombits(r.u64()),
		Seq:         r.u64(),
	}
	n := r.u32()
	if n > maxEntries || int(n)*10 > r.remaining() {
		return nil, fmt.Errorf("%w: implausible weight count %d", ErrCorrupt, n)
	}
	g.Weights = make([]MonitorWeight, 0, n)
	for i := uint32(0); i < n; i++ {
		g.Weights = append(g.Weights, MonitorWeight{
			Monitor: r.str(), Weight: math.Float64frombits(r.u64()),
		})
	}
	n = r.u32()
	if n > maxEntries || int(n)*37 > r.remaining() {
		return nil, fmt.Errorf("%w: implausible opinion count %d", ErrCorrupt, n)
	}
	g.Opinions = make([]OpinionRecord, 0, n)
	for i := uint32(0); i < n; i++ {
		g.Opinions = append(g.Opinions, OpinionRecord{
			Subject: r.str(),
			Monitor: r.str(),
			State:   r.u8(),
			Inc:     r.u64(),
			Level:   math.Float64frombits(r.u64()),
			Seq:     r.u64(),
			At:      clock.Time(r.u64()),
		})
	}
	n = r.u32()
	if n > maxEntries || int(n)*3 > r.remaining() {
		return nil, fmt.Errorf("%w: implausible verdict count %d", ErrCorrupt, n)
	}
	g.Verdicts = make([]VerdictRecord, 0, n)
	for i := uint32(0); i < n; i++ {
		g.Verdicts = append(g.Verdicts, VerdictRecord{Subject: r.str(), State: r.u8()})
	}
	n = r.u32()
	if n > maxEntries || int(n)*2 > r.remaining() {
		return nil, fmt.Errorf("%w: implausible suspect count %d", ErrCorrupt, n)
	}
	g.Suspects = make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		g.Suspects = append(g.Suspects, r.str())
	}
	return g, r.err
}

// EncodeJournalHeader serializes the journal file preamble for epoch.
func EncodeJournalHeader(epoch uint64, createdAt clock.Time) []byte {
	b := appendHeader(make([]byte, 0, headerLen+16), kindJournal)
	b = binary.BigEndian.AppendUint64(b, epoch)
	return binary.BigEndian.AppendUint64(b, uint64(createdAt))
}

// AppendDeltaRecord serializes one length-prefixed, checksummed journal
// record onto b.
func AppendDeltaRecord(b []byte, d Delta) []byte {
	payload := make([]byte, 0, 21+len(d.Peer))
	payload = append(payload, d.Kind)
	payload = binary.BigEndian.AppendUint64(payload, uint64(d.At))
	payload = binary.BigEndian.AppendUint64(payload, d.Inc)
	payload = append(payload, d.Phase)
	payload = appendStr(payload, d.Peer)
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

// DecodeJournal parses a journal file image: the header plus every valid
// record up to the first truncated or corrupted one. truncated reports
// whether a torn tail was discarded — expected after a crash mid-append,
// so it is not an error.
func DecodeJournal(data []byte) (epoch uint64, deltas []Delta, truncated bool, err error) {
	if err := checkHeader(data, kindJournal); err != nil {
		return 0, nil, false, err
	}
	r := reader{buf: data, off: headerLen}
	epoch = r.u64()
	r.u64() // createdAt: informational only
	if r.err != nil {
		return 0, nil, false, ErrCorrupt
	}
	for r.off < len(data) {
		if r.remaining() < 8 {
			return epoch, deltas, true, nil
		}
		plen := r.u32()
		sum := r.u32()
		if plen > uint32(r.remaining()) || plen < 19 || plen > 8+maxNameLen+13 {
			return epoch, deltas, true, nil
		}
		payload := data[r.off : r.off+int(plen)]
		r.off += int(plen)
		if crc32.ChecksumIEEE(payload) != sum {
			return epoch, deltas, true, nil
		}
		pr := reader{buf: payload}
		d := Delta{
			Kind:  pr.u8(),
			At:    clock.Time(pr.u64()),
			Inc:   pr.u64(),
			Phase: pr.u8(),
			Peer:  pr.str(),
		}
		if pr.err != nil || pr.off != len(payload) ||
			d.Kind < DeltaPhase || d.Kind > DeltaEvict || d.Phase > PhaseOffline {
			return epoch, deltas, true, nil
		}
		deltas = append(deltas, d)
	}
	return epoch, deltas, false, nil
}

func appendHeader(b []byte, kind uint8) []byte {
	b = append(b, magic[:]...)
	b = binary.BigEndian.AppendUint16(b, version)
	return append(b, kind, 0)
}

func checkHeader(data []byte, kind uint8) error {
	if len(data) < headerLen {
		return ErrCorrupt
	}
	if [4]byte(data[:4]) != magic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != version {
		return fmt.Errorf("%w: got %d, supported %d", ErrVersion, v, version)
	}
	if data[6] != kind {
		return fmt.Errorf("%w: wrong file kind %d", ErrCorrupt, data[6])
	}
	return nil
}

func appendStr(b []byte, s string) []byte {
	if len(s) > maxNameLen {
		s = s[:maxNameLen]
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// reader is a bounds-checked big-endian cursor: after any short read it
// latches err and every subsequent read returns zero, so decode paths
// can batch field reads and check err once.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) take(n int) []byte {
	if r.err != nil || r.remaining() < n {
		if r.err == nil {
			r.err = ErrCorrupt
		}
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) str() string {
	n := int(binary.BigEndian.Uint16(orZero2(r.take(2))))
	if n > maxNameLen {
		r.err = fmt.Errorf("%w: name length %d exceeds %d", ErrCorrupt, n, maxNameLen)
		return ""
	}
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func orZero2(b []byte) []byte {
	if b == nil {
		return []byte{0, 0}
	}
	return b
}
