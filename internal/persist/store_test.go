package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/clock"
)

func TestStoreWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteSnapshot(sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDeltas(sampleDeltas()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	snap, deltas, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 1 || len(snap.Streams) != 3 {
		t.Fatalf("loaded epoch %d with %d streams", snap.Epoch, len(snap.Streams))
	}
	if len(deltas) != 3 {
		t.Fatalf("loaded %d deltas, want 3", len(deltas))
	}
	if s2.Epoch() != 1 {
		t.Fatalf("reopened epoch = %d", s2.Epoch())
	}
}

func TestStoreLoadEmpty(t *testing.T) {
	s, err := OpenStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: got %v, want ErrNoSnapshot", err)
	}
}

func TestStoreFallsBackToOlderEpoch(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	snap1 := sampleSnapshot()
	if _, err := s.WriteSnapshot(snap1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDeltas(sampleDeltas()[:1]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteSnapshot(sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt the newest full snapshot — a crash mid-rotation in a
	// filesystem without atomic rename would look like this.
	path := filepath.Join(dir, "snap-00000002.full")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	snap, deltas, err := s2.Load()
	if err != nil {
		t.Fatalf("fallback load: %v", err)
	}
	if snap.Epoch != 1 {
		t.Fatalf("fell back to epoch %d, want 1", snap.Epoch)
	}
	if len(deltas) != 1 {
		t.Fatalf("epoch-1 journal has %d deltas, want 1", len(deltas))
	}
}

func TestStoreCrashMidRotation(t *testing.T) {
	// A crash between writing the new full snapshot and opening its
	// journal leaves epoch N+1 full with no journal; Load must take the
	// full alone. A crash before the rename leaves a temp file; Load must
	// ignore it.
	dir := t.TempDir()
	s, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteSnapshot(sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Epoch 2 full without journal.
	snap2 := sampleSnapshot()
	snap2.Epoch = 2
	if err := os.WriteFile(filepath.Join(dir, "snap-00000002.full"), EncodeSnapshot(snap2), 0o644); err != nil {
		t.Fatal(err)
	}
	// Stray temp file from an interrupted atomic write.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-snap-123"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	snap, deltas, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 2 || deltas != nil {
		t.Fatalf("loaded epoch %d with %d deltas, want epoch 2, none", snap.Epoch, len(deltas))
	}
}

func TestStorePrunesOldEpochs(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.WriteSnapshot(sampleSnapshot()); err != nil {
			t.Fatal(err)
		}
	}
	epochs, err := s.epochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || epochs[0] != 4 || epochs[1] != 5 {
		t.Fatalf("epochs after prune = %v, want [4 5]", epochs)
	}
	if _, err := os.Stat(filepath.Join(dir, "snap-00000001.journal")); !os.IsNotExist(err) {
		t.Error("epoch-1 journal not pruned")
	}
}

func TestStoreJournalMeaninglessWithoutSnapshot(t *testing.T) {
	s, err := OpenStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDeltas(sampleDeltas()); err == nil {
		t.Fatal("AppendDeltas before any snapshot succeeded")
	}
}

func TestStoreMismatchedJournalEpochIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteSnapshot(sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Overwrite the journal with one from a different epoch (torn state
	// dir copy); the snapshot must still load, the journal must not apply.
	if err := os.WriteFile(filepath.Join(dir, "snap-00000001.journal"),
		encodeJournal(9, sampleDeltas()), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, _ := OpenStore(dir, 2)
	snap, deltas, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 1 || len(deltas) != 0 {
		t.Fatalf("epoch %d, %d deltas; want epoch 1, 0 deltas", snap.Epoch, len(deltas))
	}
}

func TestCheckpointerCadence(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	sim := clock.NewSim(0)

	var pending []Delta
	full := func(now clock.Time) *Snapshot {
		return &Snapshot{TakenAt: now, Streams: []StreamRecord{{Peer: "a", Seen: true}}}
	}
	drain := func(dst []Delta) []Delta {
		dst = append(dst, pending...)
		pending = nil
		return dst
	}
	c := NewCheckpointer(sim, store, full, drain, CheckpointOptions{
		Interval:      10 * clock.Second,
		FlushInterval: clock.Second,
	})
	c.Start()

	// First tick takes the initial full snapshot.
	sim.Advance(clock.Second)
	if got := c.Snapshots(); got != 1 {
		t.Fatalf("after first tick: %d snapshots", got)
	}

	// Deltas flush on the cadence without forcing a new snapshot.
	pending = sampleDeltas()
	sim.Advance(clock.Second)
	if got := c.Deltas(); got != 3 {
		t.Fatalf("deltas written = %d, want 3", got)
	}
	if got := c.Snapshots(); got != 1 {
		t.Fatalf("flush forced a snapshot: %d", got)
	}

	// The full-snapshot interval elapses → rotation.
	sim.Advance(10 * clock.Second)
	if got := c.Snapshots(); got != 2 {
		t.Fatalf("after interval: %d snapshots", got)
	}
	if got := c.Rotations(); got != 1 {
		t.Fatalf("rotations = %d, want 1", got)
	}

	c.Stop() // final snapshot
	if got := c.Snapshots(); got != 3 {
		t.Fatalf("after stop: %d snapshots", got)
	}
	if c.Errors() != 0 {
		t.Fatalf("errors = %d", c.Errors())
	}

	snap, deltas, err := store.Load()
	if err == nil {
		_ = deltas
		if len(snap.Streams) != 1 {
			t.Fatalf("final snapshot has %d streams", len(snap.Streams))
		}
	} else {
		t.Fatalf("load after stop: %v", err)
	}
}

func TestCheckpointerSizeRotation(t *testing.T) {
	store, err := OpenStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sim := clock.NewSim(0)
	var pending []Delta
	c := NewCheckpointer(sim, store,
		func(now clock.Time) *Snapshot { return &Snapshot{TakenAt: now} },
		func(dst []Delta) []Delta { dst = append(dst, pending...); pending = nil; return dst },
		CheckpointOptions{
			Interval:        clock.Duration(1 << 60), // never by time
			FlushInterval:   clock.Second,
			JournalMaxBytes: 256,
		})
	c.Start()
	sim.Advance(clock.Second) // initial full

	for i := 0; i < 20 && c.Rotations() == 0; i++ {
		pending = sampleDeltas()
		sim.Advance(clock.Second)
	}
	if c.Rotations() == 0 {
		t.Fatalf("journal never rotated by size (len=%d)", store.JournalLen())
	}
	c.Stop()
}
