package persist

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
)

// CheckpointOptions tunes the checkpoint cadence.
type CheckpointOptions struct {
	// Interval between full snapshots. Default 30s.
	Interval clock.Duration
	// FlushInterval between journal flushes of accumulated deltas.
	// Default 1s.
	FlushInterval clock.Duration
	// JournalMaxBytes rotates to a fresh full snapshot once the delta
	// journal grows past this size, bounding both replay work on restore
	// and disk held by any one epoch. Default 1 MiB.
	JournalMaxBytes int64
	// Retain is the number of snapshot epochs kept on disk. Default 2.
	Retain int
}

func (o *CheckpointOptions) normalize() {
	if o.Interval <= 0 {
		o.Interval = 30 * clock.Second
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = clock.Second
	}
	if o.JournalMaxBytes <= 0 {
		o.JournalMaxBytes = 1 << 20
	}
	if o.Retain < 2 {
		o.Retain = 2
	}
}

// afterFuncer is satisfied by clock.Sim; under a simulated clock the
// checkpointer runs as deterministic timer callbacks instead of a
// goroutine (same pattern as the registry's wheel driver).
type afterFuncer interface {
	AfterFunc(clock.Duration, func(clock.Time))
}

// Checkpointer drives the Store on a cadence: periodic full snapshots,
// periodic delta flushes, and size-triggered journal rotation. It pulls
// state through two callbacks supplied by the owner (the registry) so it
// never touches registry internals — and, critically, the registry's
// ingest path never touches it.
type Checkpointer struct {
	clk   clock.Clock
	store *Store
	opts  CheckpointOptions

	// full captures a complete snapshot at the given instant.
	full func(clock.Time) *Snapshot
	// drain returns the deltas accumulated since the last call,
	// appending to dst; it must not block on the ingest path.
	drain func(dst []Delta) []Delta

	mu       sync.Mutex // serializes Store access across timer paths
	lastFull clock.Time
	buf      []Delta

	started atomic.Bool
	stopped atomic.Bool
	stopc   chan struct{}
	done    chan struct{}

	// Counters are maintained unconditionally (they are cheap and only
	// touched on checkpoint cadence, not ingest); InstrumentMetrics
	// exposes them.
	snapshots     metrics.Counter
	deltasWritten metrics.Counter
	rotations     metrics.Counter
	errors        metrics.Counter
	lastBytes     atomic.Int64
	wallLastFull  atomic.Int64 // wall ns of last full snapshot, for age gauge
}

// NewCheckpointer wires a checkpointer over store. full and drain are
// the state sources; see the field docs. Call Start to begin the
// cadence, or Checkpoint/Flush manually (tests, final shutdown flush).
func NewCheckpointer(clk clock.Clock, store *Store, full func(clock.Time) *Snapshot, drain func([]Delta) []Delta, opts CheckpointOptions) *Checkpointer {
	opts.normalize()
	store.retain = opts.Retain
	return &Checkpointer{
		clk:   clk,
		store: store,
		opts:  opts,
		full:  full,
		drain: drain,
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start begins the checkpoint cadence: under clock.Sim as simulated
// timer callbacks, otherwise as one goroutine. Idempotent.
func (c *Checkpointer) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	if af, ok := c.clk.(afterFuncer); ok {
		c.armSim(af)
		close(c.done) // no goroutine to wait for
		return
	}
	go c.run()
}

// Stop halts the cadence and writes a final full snapshot (the shutdown
// flush), so a graceful exit restores exactly. Idempotent.
func (c *Checkpointer) Stop() {
	if !c.stopped.CompareAndSwap(false, true) {
		return
	}
	close(c.stopc)
	if c.started.Load() {
		<-c.done
	}
	c.Checkpoint()
	c.mu.Lock()
	c.store.Close()
	c.mu.Unlock()
}

func (c *Checkpointer) armSim(af afterFuncer) {
	af.AfterFunc(c.opts.FlushInterval, func(now clock.Time) {
		if c.stopped.Load() {
			return
		}
		c.tick(now)
		c.armSim(af)
	})
}

func (c *Checkpointer) run() {
	defer close(c.done)
	for {
		select {
		case <-c.stopc:
			return
		case now := <-c.clk.After(c.opts.FlushInterval):
			c.tick(now)
		}
	}
}

// tick is one cadence step: flush deltas, rotate if the journal is over
// budget or the full-snapshot interval has elapsed.
func (c *Checkpointer) tick(now clock.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	due := c.store.Epoch() == 0 ||
		now.Sub(c.lastFull) >= c.opts.Interval ||
		c.store.JournalLen() > c.opts.JournalMaxBytes
	if due {
		c.checkpointLocked(now)
		return
	}
	c.flushLocked()
}

// Flush drains pending deltas into the journal now. Rotates first if
// the journal is over budget.
func (c *Checkpointer) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.store.Epoch() != 0 && c.store.JournalLen() > c.opts.JournalMaxBytes {
		c.checkpointLocked(c.clk.Now())
		return
	}
	c.flushLocked()
}

// Checkpoint writes a full snapshot now, folding any pending deltas in
// (a full snapshot supersedes them) and starting a fresh journal.
func (c *Checkpointer) Checkpoint() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.checkpointLocked(c.clk.Now())
}

func (c *Checkpointer) flushLocked() {
	c.buf = c.drain(c.buf[:0])
	if c.store.Epoch() == 0 || len(c.buf) == 0 {
		// No snapshot yet ⇒ deltas have nothing to amend; drop them — the
		// first checkpoint captures the same state in full.
		c.buf = c.buf[:0]
		return
	}
	if err := c.store.AppendDeltas(c.buf); err != nil {
		c.errors.Inc()
		return
	}
	c.deltasWritten.Add(uint64(len(c.buf)))
	c.buf = c.buf[:0]
}

func (c *Checkpointer) checkpointLocked(now clock.Time) {
	c.drain(nil) // superseded by the full snapshot
	snap := c.full(now)
	if snap == nil {
		return
	}
	rotated := c.store.Epoch() != 0
	n, err := c.store.WriteSnapshot(snap)
	if err != nil {
		c.errors.Inc()
		return
	}
	c.snapshots.Inc()
	if rotated {
		c.rotations.Inc()
	}
	c.lastFull = now
	c.lastBytes.Store(int64(n))
	c.wallLastFull.Store(time.Now().UnixNano())
}

// Snapshots returns the number of full snapshots written.
func (c *Checkpointer) Snapshots() uint64 { return c.snapshots.Value() }

// Deltas returns the number of delta records appended to journals.
func (c *Checkpointer) Deltas() uint64 { return c.deltasWritten.Value() }

// Rotations returns the number of journal rotations (full snapshots
// written after the first).
func (c *Checkpointer) Rotations() uint64 { return c.rotations.Value() }

// Errors returns the number of snapshot/journal write failures.
func (c *Checkpointer) Errors() uint64 { return c.errors.Value() }

// SnapshotAgeSeconds returns wall seconds since the last full snapshot,
// or -1 before the first one.
func (c *Checkpointer) SnapshotAgeSeconds() float64 {
	last := c.wallLastFull.Load()
	if last == 0 {
		return -1
	}
	return float64(time.Now().UnixNano()-last) / 1e9
}

// SnapshotBytes returns the encoded size of the last full snapshot.
func (c *Checkpointer) SnapshotBytes() int64 { return c.lastBytes.Load() }

// InstrumentMetrics registers the checkpointer's sfd_persist_* series on
// set: snapshot/delta/rotation/error counters and a snapshot-age gauge.
func (c *Checkpointer) InstrumentMetrics(set *metrics.Set) {
	set.CounterFunc("sfd_persist_snapshots_total",
		"Full state snapshots written.", c.Snapshots)
	set.CounterFunc("sfd_persist_deltas_total",
		"Incremental delta records appended to the journal.", c.Deltas)
	set.CounterFunc("sfd_persist_rotations_total",
		"Journal rotations (full snapshot supersedes the delta journal).", c.Rotations)
	set.CounterFunc("sfd_persist_errors_total",
		"Snapshot or journal write failures.", c.Errors)
	set.GaugeFunc("sfd_persist_snapshot_age_seconds",
		"Seconds since the last full snapshot was written.", c.SnapshotAgeSeconds)
	set.GaugeFunc("sfd_persist_snapshot_bytes",
		"Encoded size of the last full snapshot.", func() float64 {
			return float64(c.SnapshotBytes())
		})
}
