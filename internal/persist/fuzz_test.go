package persist

import (
	"testing"
)

// FuzzDecodeSnapshot asserts the snapshot decoder's contract on
// arbitrary input: it may reject (corrupted state → error → cold start)
// but must never panic, and anything it accepts must re-encode
// losslessly (no silent mangling of accepted state).
func FuzzDecodeSnapshot(f *testing.F) {
	valid := EncodeSnapshot(sampleSnapshot())
	f.Add(valid)
	f.Add(EncodeSnapshot(&Snapshot{}))
	f.Add(valid[:len(valid)/2]) // truncated
	skewed := append([]byte(nil), valid...)
	skewed[5] = 0x63 // version skew
	f.Add(skewed)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x80 // bit flip
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("SFDP"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data) // must not panic
		if err != nil {
			return
		}
		re, err2 := DecodeSnapshot(EncodeSnapshot(s))
		if err2 != nil {
			t.Fatalf("re-encode of accepted snapshot does not decode: %v", err2)
		}
		if len(re.Streams) != len(s.Streams) || re.Epoch != s.Epoch {
			t.Fatalf("re-encode drifted: %d/%d streams, epoch %d/%d",
				len(re.Streams), len(s.Streams), re.Epoch, s.Epoch)
		}
	})
}

// FuzzDecodeJournal asserts the journal decoder's contract: arbitrary
// bytes never panic, and the decoded prefix is always internally valid
// (kinds and phases in range).
func FuzzDecodeJournal(f *testing.F) {
	valid := encodeJournal(5, sampleDeltas())
	f.Add(valid)
	f.Add(EncodeJournalHeader(1, 0))
	f.Add(valid[:len(valid)-3]) // torn tail
	skewed := append([]byte(nil), valid...)
	skewed[4] = 0x10 // version skew
	f.Add(skewed)
	flipped := append([]byte(nil), valid...)
	flipped[headerLen+20] ^= 0x01
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		_, deltas, _, err := DecodeJournal(data) // must not panic
		if err != nil {
			return
		}
		for i, d := range deltas {
			if d.Kind < DeltaPhase || d.Kind > DeltaEvict {
				t.Fatalf("record %d: kind %d out of range", i, d.Kind)
			}
			if d.Phase > PhaseOffline {
				t.Fatalf("record %d: phase %d out of range", i, d.Phase)
			}
		}
	})
}
