package persist

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		TakenAt:  clock.Time(90 * clock.Second),
		WallNano: 1_700_000_000_123_456_789,
		Streams: []StreamRecord{
			{
				Peer: "srv-000001", Inc: 3, Phase: PhaseTrusted, Seen: true,
				LastSeq: 412, LastArrival: clock.Time(89 * clock.Second),
				Heartbeats: 412, Stale: 2, Mistakes: 1, MistakeTime: 300 * clock.Millisecond,
				Det: &core.SFDState{
					Margin:    150 * clock.Millisecond,
					FP:        clock.Time(89*clock.Second + 250*clock.Millisecond),
					State:     core.StateStable,
					SlotIndex: 4,
					LastSeq:   412,
					LastSend:  clock.Time(89 * clock.Second),
					LastDelay: 12 * clock.Millisecond,
					HaveSeq:   true,
					GapAvg:    0.03,
					GapAvgOK:  true,
					StepScale: 0.5,
					LastDir:   -1,
					Window: []detector.ArrivalSample{
						{Seq: 410, Recv: clock.Time(87 * clock.Second)},
						{Seq: 411, Recv: clock.Time(88 * clock.Second)},
						{Seq: 412, Recv: clock.Time(89 * clock.Second)},
					},
				},
			},
			{
				Peer: "srv-000002", Inc: 1, Phase: PhaseSuspected, Seen: true,
				LastSeq: 77, LastArrival: clock.Time(60 * clock.Second),
				SuspectSince: clock.Time(70 * clock.Second), Heartbeats: 77,
			},
			{Peer: "srv-000003", Phase: PhaseOffline, Seen: true, Inc: 9},
		},
		Gossip: &GossipRecord{
			ID:          "mon-a:7946",
			MistakeRate: 0.125,
			Seq:         991,
			Weights:     []MonitorWeight{{Monitor: "mon-b:7946", Weight: 0.75}},
			Opinions: []OpinionRecord{
				{Subject: "srv-000002", Monitor: "mon-b:7946", State: 1, Inc: 1,
					Level: 2.5, Seq: 88, At: clock.Time(85 * clock.Second)},
			},
			Verdicts: []VerdictRecord{{Subject: "srv-000002", State: 1}},
			Suspects: []string{"srv-000002", "srv-000003"},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	data := EncodeSnapshot(want)
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestSnapshotRoundTripEmpty(t *testing.T) {
	want := &Snapshot{Epoch: 1, TakenAt: 5, WallNano: 6}
	got, err := DecodeSnapshot(EncodeSnapshot(want))
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if got.Epoch != 1 || got.TakenAt != 5 || got.WallNano != 6 || len(got.Streams) != 0 || got.Gossip != nil {
		t.Fatalf("empty round trip mismatch: %+v", got)
	}
}

func TestDecodeSnapshotRejectsCorruption(t *testing.T) {
	data := EncodeSnapshot(sampleSnapshot())

	// Every single-bit flip must be caught by the trailing checksum (or
	// the header check) — never decoded silently, never a panic.
	for _, pos := range []int{0, 5, 7, headerLen + 3, len(data) / 2, len(data) - 5, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x40
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Errorf("bit flip at %d decoded successfully", pos)
		}
	}

	// Truncations at every length must error, not panic.
	for n := 0; n < len(data); n += 7 {
		if _, err := DecodeSnapshot(data[:n]); err == nil {
			t.Errorf("truncation to %d decoded successfully", n)
		}
	}

	// Trailing garbage.
	if _, err := DecodeSnapshot(append(append([]byte(nil), data...), 0xFF)); err == nil {
		t.Error("trailing byte decoded successfully")
	}
}

func TestDecodeSnapshotVersionSkew(t *testing.T) {
	data := EncodeSnapshot(sampleSnapshot())
	mut := append([]byte(nil), data...)
	mut[4], mut[5] = 0x00, 0x02 // version 2
	if _, err := DecodeSnapshot(mut); !errors.Is(err, ErrVersion) {
		t.Fatalf("version skew: got %v, want ErrVersion", err)
	}
	// Wrong kind (journal header on a snapshot decode).
	mut = append([]byte(nil), data...)
	mut[6] = kindJournal
	if _, err := DecodeSnapshot(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong kind: got %v, want ErrCorrupt", err)
	}
}

func sampleDeltas() []Delta {
	return []Delta{
		{Kind: DeltaPhase, Peer: "srv-000002", At: clock.Time(70 * clock.Second), Inc: 1, Phase: PhaseSuspected},
		{Kind: DeltaPhase, Peer: "srv-000002", At: clock.Time(71 * clock.Second), Inc: 1, Phase: PhaseTrusted},
		{Kind: DeltaEvict, Peer: "srv-000009", At: clock.Time(72 * clock.Second), Inc: 4},
	}
}

func encodeJournal(epoch uint64, deltas []Delta) []byte {
	b := EncodeJournalHeader(epoch, clock.Time(50*clock.Second))
	for _, d := range deltas {
		b = AppendDeltaRecord(b, d)
	}
	return b
}

func TestJournalRoundTrip(t *testing.T) {
	want := sampleDeltas()
	epoch, got, truncated, err := DecodeJournal(encodeJournal(7, want))
	if err != nil || truncated {
		t.Fatalf("DecodeJournal: err=%v truncated=%v", err, truncated)
	}
	if epoch != 7 {
		t.Fatalf("epoch = %d, want 7", epoch)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("journal round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestJournalTornTail(t *testing.T) {
	deltas := sampleDeltas()
	full := encodeJournal(3, deltas)
	headerOnly := len(EncodeJournalHeader(3, 0))

	// Every truncation point inside the record area yields the longest
	// valid prefix — never an error, never a panic.
	for n := headerOnly; n < len(full); n++ {
		_, got, truncated, err := DecodeJournal(full[:n])
		if err != nil {
			t.Fatalf("truncate to %d: %v", n, err)
		}
		if n < len(full) && !truncated && len(got) == len(deltas) {
			t.Fatalf("truncate to %d: full decode reported", n)
		}
		for i, d := range got {
			if !reflect.DeepEqual(d, deltas[i]) {
				t.Fatalf("truncate to %d: prefix record %d mismatch", n, i)
			}
		}
	}

	// A bit flip inside a record's payload drops that record and the rest
	// (the CRC catches it) but keeps the prefix.
	mut := append([]byte(nil), full...)
	mut[len(mut)-3] ^= 0x01
	_, got, truncated, err := DecodeJournal(mut)
	if err != nil || !truncated {
		t.Fatalf("flip: err=%v truncated=%v", err, truncated)
	}
	if len(got) != len(deltas)-1 {
		t.Fatalf("flip: got %d records, want %d", len(got), len(deltas)-1)
	}
}

func TestSnapshotRebase(t *testing.T) {
	s := sampleSnapshot()
	s.Streams[1].SuspectSince = 0 // unset sentinel must stay 0
	shift := -50 * clock.Second
	s.Rebase(shift)
	if s.TakenAt != clock.Time(40*clock.Second) {
		t.Errorf("TakenAt = %v", s.TakenAt)
	}
	if got := s.Streams[0].Det.Window[0].Recv; got != clock.Time(37*clock.Second) {
		t.Errorf("window recv = %v", got)
	}
	if s.Streams[1].SuspectSince != 0 {
		t.Errorf("zero sentinel rebased to %v", s.Streams[1].SuspectSince)
	}
	if got := s.Gossip.Opinions[0].At; got != clock.Time(35*clock.Second) {
		t.Errorf("opinion at = %v", got)
	}
}

func TestSnapshotApply(t *testing.T) {
	s := &Snapshot{Streams: []StreamRecord{
		{Peer: "a", Inc: 1, Phase: PhaseTrusted},
		{Peer: "b", Inc: 2, Phase: PhaseTrusted},
		{Peer: "c", Inc: 1, Phase: PhaseSuspected},
	}}
	s.Apply([]Delta{
		{Kind: DeltaPhase, Peer: "a", Phase: PhaseSuspected, Inc: 1, At: 100},
		{Kind: DeltaEvict, Peer: "b"},
		{Kind: DeltaPhase, Peer: "c", Phase: PhaseTrusted, Inc: 1},
		{Kind: DeltaPhase, Peer: "d", Phase: PhaseSuspected, Inc: 5, At: 200}, // post-snapshot stream
		{Kind: DeltaPhase, Peer: "a", Phase: PhaseTrusted, Inc: 2},            // newest wins, inc ratchets
	})
	byPeer := map[string]StreamRecord{}
	for _, r := range s.Streams {
		byPeer[r.Peer] = r
	}
	if len(byPeer) != 3 {
		t.Fatalf("stream count = %d, want 3 (%+v)", len(byPeer), byPeer)
	}
	if a := byPeer["a"]; a.Phase != PhaseTrusted || a.Inc != 2 {
		t.Errorf("a = %+v", a)
	}
	if _, ok := byPeer["b"]; ok {
		t.Error("b not evicted")
	}
	if c := byPeer["c"]; c.Phase != PhaseTrusted {
		t.Errorf("c = %+v", c)
	}
	if d := byPeer["d"]; d.Phase != PhaseSuspected || d.Inc != 5 || d.SuspectSince != 200 || !d.Seen {
		t.Errorf("d = %+v", d)
	}
}

func TestDecodeSnapshotImplausibleCounts(t *testing.T) {
	// A tiny file claiming 4 billion streams must be rejected before any
	// large allocation happens.
	b := appendHeader(nil, kindSnapshot)
	b = append(b, make([]byte, 8+8+8)...)      // epoch, takenAt, wallNano
	b = append(b, 0xFF, 0xFF, 0xFF, 0xFF)      // streamCount
	b = append(b, bytes.Repeat([]byte{0}, 8)...)
	var crc [4]byte
	b = append(b, crc[:]...)
	if _, err := DecodeSnapshot(b); err == nil {
		t.Fatal("implausible stream count decoded")
	}
}
