// replay runs a failure detector over a heartbeat trace (a file written
// by tracegen, or a freshly generated preset) and prints its measured
// QoS — the paper's replay-based evaluation for a single parameter point
// or a sweep.
//
// Usage:
//
//	replay -env WAN-1 -fd sfd -sm1 200ms
//	replay -in wan1.hbtr -fd chen -alpha 150ms
//	replay -env WAN-JPCH -fd phi -phi 8
//	replay -env WAN-1 -fd chen -sweep "0,50,100,200,400,800,1600"
//	replay -env WAN-1 -fd sfd -crash 100000   # inject a crash at seq
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/qos"
	"repro/internal/trace"
)

func main() {
	var (
		env   = flag.String("env", "", "generate this WAN preset instead of reading a file")
		in    = flag.String("in", "", "binary trace file to replay")
		n     = flag.Int("n", trace.DefaultCount, "heartbeats when generating")
		fd    = flag.String("fd", "sfd", "detector: sfd, chen, bertier, phi, fixed")
		ws    = flag.Int("ws", detector.DefaultWindowSize, "window size")
		alpha = flag.Duration("alpha", 100*time.Millisecond, "chen: safety margin α")
		phi   = flag.Float64("phi", 8, "phi: threshold Φ")
		fixed = flag.Duration("timeout", time.Second, "fixed: timeout")
		sm1   = flag.Duration("sm1", 100*time.Millisecond, "sfd: initial margin SM₁")
		maxTD = flag.Duration("maxtd", 900*time.Millisecond, "sfd: target max detection time")
		maxMR = flag.Float64("maxmr", 0.35, "sfd: target max mistake rate (1/s)")
		minQA = flag.Float64("minqap", 0.994, "sfd: target min query accuracy probability")
		sweep = flag.String("sweep", "", "comma-separated parameter list (ms for chen/sfd/fixed, raw for phi)")
		crash = flag.Uint64("crash", 0, "inject a crash at this sequence number")
	)
	flag.Parse()

	tr, err := loadTrace(*env, *in, *n)
	if err != nil {
		fatal(err)
	}

	targets := core.Targets{MaxTD: *maxTD, MaxMR: *maxMR, MinQAP: *minQA}
	factory := func(param float64) detector.Detector {
		d := clock.Duration(param * float64(time.Millisecond))
		switch *fd {
		case "chen":
			return detector.NewChen(*ws, 0, d)
		case "bertier":
			return detector.NewBertier(*ws, 0, detector.DefaultBertierParams())
		case "phi":
			return detector.NewPhi(*ws, param, 0)
		case "fixed":
			return detector.NewFixed(d, *ws)
		case "sfd":
			return core.New(core.Config{WindowSize: *ws, InitialMargin: d, Targets: targets})
		default:
			fatal(fmt.Errorf("unknown detector %q", *fd))
			return nil
		}
	}

	if *sweep != "" {
		var params []float64
		for _, tok := range strings.Split(*sweep, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				fatal(fmt.Errorf("bad sweep value %q: %v", tok, err))
			}
			params = append(params, v)
		}
		curve := qos.Sweep(tr, *fd, factory, params)
		fmt.Print(curve.Table())
		return
	}

	// Single point: pick the parameter for the chosen detector.
	var param float64
	switch *fd {
	case "chen":
		param = float64(*alpha) / float64(time.Millisecond)
	case "phi":
		param = *phi
	case "fixed":
		param = float64(*fixed) / float64(time.Millisecond)
	case "sfd":
		param = float64(*sm1) / float64(time.Millisecond)
	}
	det := factory(param)

	if *crash > 0 {
		out := qos.ReplayWithCrash(tr.Stream(), det, *crash)
		fmt.Println(out.Result)
		fmt.Printf("crash injected at seq %d (t=%.3fs): detected after %v\n",
			*crash, out.CrashAt.Seconds(), out.Latency)
		return
	}

	res := qos.Replay(tr.Stream(), det)
	fmt.Println(res)
	fmt.Printf("TD min/avg/max: %v / %v / %v\n", res.TDMin, res.TDAvg, res.TDMax)
	fmt.Printf("TM=%v TMR=%v warmup=%d arrivals=%d\n", res.TM, res.TMR, res.Warmup, res.Arrivals)
	if s, ok := det.(*core.SFD); ok {
		fmt.Printf("sfd: state=%v final-SM=%v adjustments=%d\n", s.State(), s.Margin(), len(s.History()))
		fmt.Printf("sfd: %s\n", s.Response())
	}
}

func loadTrace(env, in string, n int) (*trace.Trace, error) {
	switch {
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	case env != "":
		gp, err := trace.Preset(env)
		if err != nil {
			return nil, err
		}
		gp.Count = n
		return trace.Collect(gp.Meta, trace.NewGenerator(gp)), nil
	default:
		return nil, fmt.Errorf("need -env or -in")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "replay: %v\n", err)
	os.Exit(1)
}
