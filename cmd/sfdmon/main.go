// sfdmon is a live UDP heartbeat daemon: run it as a sender on the
// monitored host and as a monitor on the observing host. The monitor
// drives an SFD (or a baseline detector) per peer through the sharded
// registry, logs failure-bus transitions, evicts peers that stay
// offline, and prints a status table — the paper's PlanetLab motivation
// turned into a tool ("it is impractical to login one by one without
// any guidance").
//
// Usage:
//
//	# on the monitored host:
//	sfdmon -mode send -to 10.0.0.2:7946 -interval 100ms
//
//	# on the monitoring host (with the HTTP status surface):
//	sfdmon -mode monitor -listen :7946 -refresh 1s -serve :8080
//
//	# loopback demo in one process:
//	sfdmon -mode demo
//
//	# multi-monitor deployment: every monitor also gossips suspicion
//	# digests with its peers and publishes corroborated Global* verdicts:
//	sfdmon -mode monitor -listen :7946 -serve :8080 \
//	    -gossip -gossip-peers 10.0.0.3:7946,10.0.0.4:7946 -gossip-quorum 2
//
//	# chaos drill: replay a scripted impairment timeline against the
//	# live inbound stream (JSON file or inline DSL; see internal/chaos):
//	sfdmon -mode monitor -listen :7946 -serve :8080 \
//	    -chaos '2s+10s:loss(rate=0.4,burst=6);15s+5s:partition(dir=in)'
//
//	# crash-safe state: checkpoint detector/registry/gossip state to disk
//	# and warm-restart from it (SIGINT/SIGTERM flushes a final snapshot):
//	sfdmon -mode monitor -listen :7946 -state-dir /var/lib/sfdmon
//
//	# tail one subtree of a running monitor's failure events (NDJSON over
//	# the monitor's /watch endpoint; `+`/`#` wildcards route in the
//	# monitor's topic trie, so only matching events cross the wire).
//	# -retry reconnects with capped exponential backoff when the monitor
//	# restarts or sheds the connection (503 at the watch cap):
//	sfdmon -mode watch -url http://10.0.0.2:8080 -filter 'eu/+/web-1/#' -retry
//
//	# federation: a regional aggregator merges per-cohort digests from
//	# leaf monitors, tracks leaf liveness with the same SFD machinery,
//	# re-delegates a dead leaf's cohorts, and serves the fleet view:
//	sfdmon -mode aggregate -listen :7950 -serve :8090
//
//	# ... and each leaf monitor rolls its cohorts up to it:
//	sfdmon -mode monitor -listen :7946 -serve :8080 \
//	    -federate 10.0.0.9:7950 -fed-id eu/leaf-1 -fed-region eu \
//	    -fed-cohorts 'eu/cluster-3/#,eu/cluster-4/#'
//
// With -serve, the monitor exposes GET /status (full JSON snapshot),
// GET /vars (counters + per-shard occupancy), GET /metrics (Prometheus
// text exposition: receiver, registry, gossip, chaos, and per-stream
// detector QoS), GET /healthz, with -gossip GET /gossip (verdicts, peer
// weights, opinion table), and with -chaos GET /chaos (scenario,
// injection counters, active impairments; ?log=1 for the injection
// log). -pprof additionally mounts the Go profiler under /debug/pprof/
// on the same listener.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	sfd "repro"
)

func main() {
	var (
		mode     = flag.String("mode", "demo", "send, monitor, aggregate, watch, or demo")
		to       = flag.String("to", "127.0.0.1:7946", "send: monitor address")
		listen   = flag.String("listen", ":7946", "monitor: bind address")
		interval = flag.Duration("interval", 100*time.Millisecond, "send: heartbeat interval")
		jitter   = flag.Float64("jitter", 0, "send: per-beat uniform jitter fraction in [0,1) (0 = fixed cadence)")
		ramp     = flag.Duration("ramp", 0, "send: random start delay drawn from [0,ramp) (desynchronizes fleets)")
		hbName   = flag.String("name", "", "send: logical stream name (wire-v3; the monitor keys the stream by name, surviving address changes)")
		refresh  = flag.Duration("refresh", time.Second, "monitor: status print interval")
		maxTD    = flag.Duration("maxtd", 2*time.Second, "monitor: target max detection time")
		maxMR    = flag.Float64("maxmr", 0.5, "monitor: target max mistake rate")
		minQAP   = flag.Float64("minqap", 0.99, "monitor: target min QAP")
		serve    = flag.String("serve", "", "monitor: HTTP status address (e.g. :8080; empty = disabled)")
		pprofOn  = flag.Bool("pprof", false, "monitor: mount /debug/pprof/ on the -serve listener")
		evict    = flag.Duration("evict", time.Minute, "monitor: drop peers offline this long (<0 = never)")
		duration = flag.Duration("duration", 0, "exit after this long (0 = run until interrupted)")

		rxQueues = flag.Int("rxqueues", 1, "monitor: parallel ingest queues (rounded up to a power of two)")
		rxBatch  = flag.Int("rxbatch", 32, "monitor: datagrams per batched socket read (Linux recvmmsg fast path)")

		stateDir   = flag.String("state-dir", "", "monitor: directory for crash-safe state snapshots (empty = no persistence)")
		checkpoint = flag.Duration("checkpoint", 30*time.Second, "monitor: full-snapshot interval when -state-dir is set")

		gossipOn       = flag.Bool("gossip", false, "monitor: exchange suspicion digests with peer monitors")
		gossipPeers    = flag.String("gossip-peers", "", "monitor: comma-separated peer monitor addresses")
		gossipID       = flag.String("gossip-id", "", "monitor: gossip identity (default: the bound address)")
		gossipInterval = flag.Duration("gossip-interval", 250*time.Millisecond, "monitor: anti-entropy round period")
		gossipQuorum   = flag.Int("gossip-quorum", 2, "monitor: concurring monitors needed for a global verdict")
		gossipSeed     = flag.Int64("gossip-seed", 0, "monitor: peer-selection seed (0 = default)")

		chaosSpec = flag.String("chaos", "", "scenario to inject: a JSON file path or the flag DSL (see internal/chaos)")
		chaosSeed = flag.Int64("chaos-seed", 0, "override the scenario's injection seed (0 = keep)")

		watchURL    = flag.String("url", "http://127.0.0.1:8080", "watch: base URL of a monitor's HTTP surface")
		watchFilter = flag.String("filter", "#", "watch: topic filter over stream names (+/# wildcards)")
		watchBuf    = flag.Int("buf", 256, "watch: server-side subscription buffer (drop-oldest beyond it)")
		watchMax    = flag.Int("max", 0, "watch: exit after this many events (0 = stream until interrupted)")
		watchRetry  = flag.Bool("retry", false, "watch: reconnect with capped exponential backoff instead of exiting")

		fedAgg      = flag.String("federate", "", "monitor: aggregator address to roll cohort digests up to (empty = no federation)")
		fedAggs     = flag.String("fed-aggs", "", "monitor: comma-separated ordered aggregator addresses (HA pair; supersedes -federate)")
		fedID       = flag.String("fed-id", "", "monitor: federation leaf identity (default: the bound address)")
		fedRegion   = flag.String("fed-region", "", "monitor/aggregate: region label")
		fedCohorts  = flag.String("fed-cohorts", "", "monitor: comma-separated cohort topic filters this leaf owns (e.g. 'eu/cluster-3/#')")
		fedInterval = flag.Duration("fed-interval", time.Second, "monitor/aggregate: digest roll-up interval")
		fedPeer     = flag.String("fed-peer", "", "aggregate: comma-separated HA peer aggregator addresses (empty = standalone)")
		fedInc      = flag.Uint64("fed-inc", 1, "aggregate: incarnation, bumped on restart so HA peers reset this instance's beat stream")
	)
	flag.Parse()

	var chaosSc *sfd.ChaosScenario
	if *chaosSpec != "" {
		sc, err := loadScenario(*chaosSpec, *chaosSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sfdmon: -chaos: %v\n", err)
			os.Exit(2)
		}
		chaosSc = &sc
	}

	switch *mode {
	case "send":
		if strings.TrimSpace(*to) == "" {
			fmt.Fprintln(os.Stderr, "sfdmon: -mode send needs a monitor address: -to host:port")
			os.Exit(2)
		}
		if *interval <= 0 {
			fmt.Fprintf(os.Stderr, "sfdmon: -interval must be positive (got %v)\n", *interval)
			os.Exit(2)
		}
		if *jitter < 0 || *jitter >= 1 {
			fmt.Fprintf(os.Stderr, "sfdmon: -jitter must be in [0,1) (got %g)\n", *jitter)
			os.Exit(2)
		}
		if *ramp < 0 {
			fmt.Fprintf(os.Stderr, "sfdmon: -ramp must be non-negative (got %v)\n", *ramp)
			os.Exit(2)
		}
		runSender(*to, *interval, *jitter, *ramp, *hbName, *duration, chaosSc)
	case "monitor":
		var gc *gossipConfig
		if *gossipOn {
			gc = &gossipConfig{
				peers:    splitPeers(*gossipPeers),
				id:       *gossipID,
				interval: *gossipInterval,
				quorum:   *gossipQuorum,
				seed:     *gossipSeed,
			}
			if len(gc.peers) == 0 {
				fmt.Fprintln(os.Stderr, "sfdmon: -gossip requires -gossip-peers")
				os.Exit(2)
			}
		}
		var fc *fedConfig
		if *fedAgg != "" || *fedAggs != "" {
			fc = &fedConfig{
				agg:      *fedAgg,
				aggs:     splitPeers(*fedAggs),
				id:       *fedID,
				region:   *fedRegion,
				cohorts:  splitPeers(*fedCohorts),
				interval: *fedInterval,
			}
			if fc.agg == "" && len(fc.aggs) > 0 {
				fc.agg = fc.aggs[0]
			}
		}
		runMonitor(*listen, *serve, *refresh,
			sfd.Targets{MaxTD: *maxTD, MaxMR: *maxMR, MinQAP: *minQAP}, *evict, *duration, gc, *pprofOn, chaosSc,
			*stateDir, *checkpoint, fc, *rxQueues, *rxBatch)
	case "aggregate":
		runAggregate(*listen, *serve, *fedID, *fedRegion, splitPeers(*fedPeer), *fedInc, *fedInterval, *refresh, *duration, *pprofOn)
	case "watch":
		runWatch(*watchURL, *watchFilter, *watchBuf, *watchMax, *duration, *watchRetry)
	case "demo":
		runDemo()
	default:
		fmt.Fprintf(os.Stderr, "sfdmon: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// loadScenario resolves the -chaos flag: a readable file is parsed as
// JSON, anything else as the compact DSL. A nonzero seed flag overrides
// the scenario's own.
func loadScenario(spec string, seed int64) (sfd.ChaosScenario, error) {
	var sc sfd.ChaosScenario
	if b, err := os.ReadFile(spec); err == nil {
		sc, err = sfd.ParseChaosScenario(b)
		if err != nil {
			return sc, fmt.Errorf("%s: %w", spec, err)
		}
	} else {
		var derr error
		sc, derr = sfd.ParseChaosDSL(spec)
		if derr != nil {
			return sc, fmt.Errorf("neither a readable file (%v) nor a valid scenario DSL (%v)", err, derr)
		}
	}
	if seed != 0 {
		sc.Seed = seed
	}
	return sc, nil
}

func runSender(to string, interval time.Duration, jitter float64, ramp time.Duration, name string, duration time.Duration, chaosSc *sfd.ChaosScenario) {
	udp, err := sfd.ListenUDP(":0")
	if err != nil {
		fatal(err)
	}
	defer udp.Close()
	var ep sfd.Endpoint = udp
	clk := sfd.NewRealClock()
	hbClk := clk

	// A send-side scenario impairs outbound heartbeats at the source and
	// lets skew steps drag the sender's timestamp clock.
	var ctl *sfd.ChaosController
	if chaosSc != nil {
		ctl = sfd.NewChaosController(clk, chaosSc.Seed)
		skewed := sfd.NewSkewedClock(clk)
		ctl.AttachClock(skewed)
		hbClk = skewed
		cep := sfd.WrapChaos(ep, ctl)
		cep.Start()
		ep = cep
		if err := ctl.Play(*chaosSc); err != nil {
			fatal(err)
		}
		fmt.Printf("sfdmon: chaos scenario %q armed (seed %d, %d steps)\n",
			chaosSc.Name, ctl.Seed(), len(chaosSc.Steps))
	}

	// The paced sender shares the load harness's timing model, so a
	// hand-run sender paces exactly like a harness fleet member.
	snd, err := sfd.NewPacedHeartbeatSender(ep, to, name,
		sfd.LoadPacer{Interval: interval, Jitter: jitter, Ramp: ramp}, 0, hbClk)
	if err != nil {
		fatal(err)
	}
	snd.Start()
	how := fmt.Sprintf("every %v", interval)
	if jitter > 0 {
		how += fmt.Sprintf(" ±%d%%", int(jitter*100))
	}
	if ramp > 0 {
		how += fmt.Sprintf(" after <%v ramp", ramp)
	}
	if name != "" {
		how += fmt.Sprintf(" as %q", name)
	}
	fmt.Printf("sfdmon: heartbeating to %s %s (from %s)\n", to, how, udp.Addr())
	waitForExit(duration)
	snd.Stop()
	fmt.Printf("sfdmon: sent %d heartbeats\n", snd.Sent())
	if ctl != nil {
		c := ctl.Counters()
		fmt.Printf("sfdmon: chaos injected loss=%d partition=%d delayed=%d reordered=%d duplicated=%d truncated=%d\n",
			c.LossDrops, c.PartDrops, c.Delayed, c.Reordered, c.Duplicated, c.Truncated)
	}
}

// gossipConfig carries the -gossip* flags into runMonitor.
type gossipConfig struct {
	peers    []string
	id       string
	interval time.Duration
	quorum   int
	seed     int64
}

// fedConfig carries the -federate/-fed-* flags into runMonitor.
type fedConfig struct {
	agg      string
	aggs     []string // ordered HA list; supersedes agg when set
	id       string
	region   string
	cohorts  []string
	interval time.Duration
}

func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func runMonitor(listen, serve string, refresh time.Duration, targets sfd.Targets, evict, duration time.Duration, gc *gossipConfig, pprofOn bool, chaosSc *sfd.ChaosScenario, stateDir string, checkpoint time.Duration, fc *fedConfig, rxQueues, rxBatch int) {
	// The chaos wrapper pumps only the primary receive channel, so a
	// scenario forces the transport back to a single ingest queue.
	if chaosSc != nil && rxQueues > 1 {
		fmt.Fprintln(os.Stderr, "sfdmon: -chaos forces -rxqueues=1 (the chaos pump drains one queue)")
		rxQueues = 1
	}
	udp, err := sfd.ListenUDPOpts(listen, sfd.UDPOptions{Queues: rxQueues, Batch: rxBatch})
	if err != nil {
		fatal(err)
	}
	defer udp.Close()
	var ep sfd.Endpoint = udp
	clk := sfd.NewRealClock()

	// A monitor-side scenario sits between the socket and the receiver,
	// impairing the live inbound heartbeat/gossip stream.
	var ctl *sfd.ChaosController
	if chaosSc != nil {
		ctl = sfd.NewChaosController(clk, chaosSc.Seed)
		cep := sfd.WrapChaos(ep, ctl)
		cep.Start()
		defer cep.Close()
		ep = cep
		if err := ctl.Play(*chaosSc); err != nil {
			fatal(err)
		}
		fmt.Printf("sfdmon: chaos scenario %q armed (seed %d, %d steps)\n",
			chaosSc.Name, ctl.Seed(), len(chaosSc.Steps))
	}

	reg := sfd.NewRegistry(clk, sfd.SFDFactory(targets), sfd.RegistryOptions{
		EvictAfter:         evict,
		StateDir:           stateDir,
		CheckpointInterval: checkpoint,
	})
	reg.Start()
	defer reg.Stop()
	if stateDir != "" {
		// Start restored any valid snapshot (warm restart) and armed the
		// checkpointer; report what it found.
		switch n, err := reg.RestoredStreams(); {
		case err != nil && errors.Is(err, sfd.ErrNoSnapshot):
			fmt.Printf("sfdmon: no state snapshot in %s (cold start), checkpointing every %v\n", stateDir, checkpoint)
		case err != nil:
			fmt.Fprintf(os.Stderr, "sfdmon: state restore failed, cold start: %v\n", err)
		default:
			fmt.Printf("sfdmon: warm restart: restored %d streams from %s\n", n, stateDir)
		}
	}
	recv := sfd.NewHeartbeatReceiver(ep, clk, reg.Observe)

	// Gossip shares the heartbeat socket: digests (magic "SG") fall
	// through the receiver's heartbeat decoder into the gossiper.
	var gsp *sfd.Gossiper
	if gc != nil {
		gsp = sfd.NewGossiper(ep, clk, reg, gc.peers, sfd.GossipOptions{
			ID:       gc.id,
			Interval: gc.interval,
			Quorum:   gc.quorum,
			Seed:     gc.seed,
		})
		gsp.Start()
		defer gsp.Stop()
	}

	// Federation shares it too: assignment tables (magic "FD") arrive on
	// the same socket the leaf pushes digests through.
	var leaf *sfd.FederationLeaf
	if fc != nil {
		id := fc.id
		if id == "" {
			id = ep.Addr()
		}
		opts := sfd.FederationLeafOptions{
			ID:       id,
			Region:   fc.region,
			Cohorts:  fc.cohorts,
			Interval: fc.interval,
			Aggs:     fc.aggs,
		}
		if gsp != nil {
			opts.WeightFn = gsp.Weight // gossip accuracy feeds re-delegation preference
		}
		var err error
		leaf, err = sfd.NewFederationLeaf(ep, clk, reg, fc.agg, opts)
		if err != nil {
			fatal(err)
		}
		leaf.Start()
		defer leaf.Stop()
	}
	if gsp != nil || leaf != nil {
		recv.SetForeign(func(in sfd.Inbound) {
			switch {
			case leaf != nil && sfd.IsFederationDatagram(in.Payload):
				leaf.HandleDatagramFrom(in.From, in.Payload)
			case gsp != nil:
				gsp.HandleDatagram(in.Payload)
			}
		})
	}
	recv.Start()

	// One /metrics page for the whole pipeline: the transport, receiver,
	// and gossiper register their instruments into the registry's set,
	// and the transport's raw counters land in the /vars "aux" section so
	// silent datagram drops are observable from both surfaces.
	udp.InstrumentMetrics(reg.Metrics())
	reg.RegisterVars("transport", func() any { return udp.Counters() })
	recv.InstrumentMetrics(reg.Metrics())
	if gsp != nil {
		gsp.InstrumentMetrics(reg.Metrics())
	}
	if leaf != nil {
		leaf.InstrumentMetrics(reg.Metrics())
	}
	if ctl != nil {
		ctl.InstrumentMetrics(reg.Metrics())
	}

	fmt.Printf("sfdmon: monitoring on %s (targets %v)\n", ep.Addr(), targets)
	fmt.Printf("sfdmon: ingest: %d queue(s), batched reads %v\n", udp.RecvQueues(), udp.Batched())
	if gsp != nil {
		fmt.Printf("sfdmon: gossiping as %s with %v (quorum %d, every %v)\n",
			gsp.ID(), gsp.Peers(), gc.quorum, gsp.Options().Interval)
	}
	if leaf != nil {
		fmt.Printf("sfdmon: federating as leaf %s to %v (%d cohorts, every %v)\n",
			leaf.ID(), leaf.Aggregators(), len(leaf.Cohorts()), leaf.Options().Interval)
	}

	// Log every failure-bus transition; eviction also clears the
	// receiver's stale filter so both tables stay bounded under churn.
	sub := reg.Subscribe(1024)
	defer sub.Close()
	go func() {
		for ev := range sub.C() {
			fmt.Printf("event: %s\n", ev)
			if ev.Type == sfd.EventEvicted {
				recv.Forget(ev.Peer)
			}
		}
	}()

	if serve != "" {
		mux := http.NewServeMux()
		mux.Handle("/", reg.Handler())
		surfaces := "/status (also /vars, /metrics, /healthz"
		if gsp != nil {
			mux.Handle("/gossip", gsp.Handler())
			surfaces += ", /gossip"
		}
		if ctl != nil {
			mux.Handle("/chaos", ctl.Handler())
			surfaces += ", /chaos"
		}
		if pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			surfaces += ", /debug/pprof"
		}
		srv := &http.Server{Addr: serve, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "sfdmon: http: %v\n", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("sfdmon: serving http://%s%s)\n", serve, surfaces)
	}

	ticker := time.NewTicker(refresh)
	defer ticker.Stop()
	done := exitChan(duration)
loop:
	for {
		select {
		case <-done:
			break loop
		case <-ticker.C:
			now := clk.Now()
			fmt.Printf("--- %s ---\n", time.Now().Format(time.RFC3339))
			fmt.Print(sfd.FormatSnapshot(reg.Snapshot(now)))
			c := reg.Counters()
			if d := sub.Dropped(); d > 0 {
				fmt.Printf("warning: %d bus events dropped by the log subscriber\n", d)
			}
			fmt.Printf("counters: hb=%d stale=%d suspects=%d trusts=%d offline=%d evicted=%d streams=%d\n",
				c.Heartbeats, c.Stale, c.Suspects, c.Trusts, c.Offlines, c.Evictions, c.Streams)
		}
	}

	// Graceful shutdown (SIGINT/SIGTERM or -duration), in dependency
	// order: close the socket first so the receiver quiesces and no new
	// arrivals race the final snapshot, stop the gossiper, then stop the
	// registry — which flushes a full state snapshot when -state-dir is
	// set — and exit 0. The remaining defers (HTTP server, chaos wrapper)
	// are idempotent backstops.
	fmt.Println("sfdmon: shutting down")
	udp.Close()
	recv.Wait()
	if gsp != nil {
		gsp.Stop()
	}
	reg.Stop()
	if stateDir != "" {
		fmt.Printf("sfdmon: final state snapshot flushed to %s\n", stateDir)
	}
}

// runAggregate runs the regional federation tier: it listens for leaf
// digests over UDP, merges them into the fleet view, tracks leaf
// liveness with the same detector machinery the leaves use for their
// streams, and re-delegates a dead leaf's cohorts to survivors. With
// -fed-peer it runs as one half of an HA pair: peer beats and state
// mirrors flow to the listed addresses, the lowest alive id leads, and
// a restarted instance (bump -fed-inc) rejoins as standby and catches
// up by anti-entropy. With -serve it exposes GET /fleet (merged fleet,
// HA role, peers, re-delegation history) alongside the leaf-liveness
// registry's /status, /vars, /metrics.
func runAggregate(listen, serve, id, region string, peers []string, inc uint64, interval, refresh, duration time.Duration, pprofOn bool) {
	udp, err := sfd.ListenUDP(listen)
	if err != nil {
		fatal(err)
	}
	defer udp.Close()
	clk := sfd.NewRealClock()

	if id == "" {
		id = udp.Addr()
	}
	agg := sfd.NewFederationAggregator(udp, clk, sfd.FederationAggregatorOptions{
		ID:             id,
		Region:         region,
		Peers:          peers,
		Incarnation:    inc,
		DigestInterval: interval,
	})
	agg.Start()
	defer agg.Stop()
	go sfd.Pump(udp, func(in sfd.Inbound) { agg.HandleDatagram(in.From, in.Payload) })

	fmt.Printf("sfdmon: aggregating on %s as %s (digest interval %v)\n", udp.Addr(), id, interval)
	if len(peers) > 0 {
		fmt.Printf("sfdmon: HA pair with %v (incarnation %d, lowest alive id leads)\n", peers, inc)
	}

	if serve != "" {
		liveness := agg.Liveness()
		agg.InstrumentMetrics(liveness.Metrics())
		mux := http.NewServeMux()
		mux.Handle("/", liveness.Handler()) // leaf liveness: /status, /vars, /metrics, /healthz
		mux.Handle("/fleet", agg.Handler())
		if pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
		}
		srv := &http.Server{Addr: serve, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "sfdmon: http: %v\n", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("sfdmon: serving http://%s/fleet (also /status, /vars, /metrics, /healthz)\n", serve)
	}

	ticker := time.NewTicker(refresh)
	defer ticker.Stop()
	done := exitChan(duration)
loop:
	for {
		select {
		case <-done:
			break loop
		case <-ticker.C:
			c := agg.Counters()
			fmt.Printf("fed: role=%s leaves=%d/%d cohorts=%d (orphans=%d) streams=%d digests=%d stale=%d bad=%d redelegations=%d assign-v%d\n",
				agg.Role(), c.LiveLeaves, c.Leaves, c.Cohorts, c.OrphanedCohorts, c.FleetStreams,
				c.DigestsReceived, c.DigestsStale, c.DigestsBad, c.Redelegations, agg.AssignVersion())
		}
	}
	fmt.Println("sfdmon: shutting down")
}

// runWatch tails a monitor's /watch endpoint: one HTTP long-poll whose
// NDJSON lines (hello, events, keepalive heartbeats with this
// connection's drop accounting) are printed as they arrive. The filter
// is matched server-side in the monitor's topic trie, so a narrow
// watcher costs the monitor — and the network — only its own events.
// With retry, a failed connection or a severed stream reconnects under
// capped exponential backoff (500ms doubling to 15s, reset after any
// successful connection) instead of exiting — a 503 from a monitor at
// its watch-connection cap is retried the same way.
func runWatch(base, filter string, buf, max int, duration time.Duration, retry bool) {
	q := url.Values{}
	q.Set("filter", filter)
	if buf > 0 {
		q.Set("buf", strconv.Itoa(buf))
	}
	if max > 0 {
		q.Set("max", strconv.Itoa(max))
	}
	target := strings.TrimRight(base, "/") + "/watch?" + q.Encode()
	done := exitChan(duration)

	const (
		backoffMin = 500 * time.Millisecond
		backoffMax = 15 * time.Second
	)
	backoff := backoffMin
	total := 0
	for {
		lines, err := watchOnce(target, base, filter, done)
		total += lines
		select {
		case <-done: // local shutdown: a read error on the closed body is expected
			fmt.Fprintf(os.Stderr, "sfdmon: watch stream closed after %d lines\n", total)
			return
		default:
		}
		if !retry {
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "sfdmon: watch stream closed after %d lines\n", total)
			return
		}
		if lines > 0 {
			backoff = backoffMin // the connection worked; start the ladder over
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sfdmon: watch: %v; retrying in %v\n", err, backoff)
		} else {
			fmt.Fprintf(os.Stderr, "sfdmon: watch stream ended; retrying in %v\n", backoff)
		}
		select {
		case <-done:
			fmt.Fprintf(os.Stderr, "sfdmon: watch stream closed after %d lines\n", total)
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > backoffMax {
			backoff = backoffMax
		}
	}
}

// watchOnce runs a single /watch connection to completion, returning how
// many NDJSON lines it printed and why it ended.
func watchOnce(target, base, filter string, done <-chan struct{}) (int, error) {
	resp, err := http.Get(target)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("%s: %s: %s", target, resp.Status, strings.TrimSpace(string(msg)))
	}
	fmt.Fprintf(os.Stderr, "sfdmon: watching %s with filter %q\n", base, filter)

	// Shutdown closes the body, unblocking the scanner.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-done:
			resp.Body.Close()
		case <-stop:
		}
	}()

	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		fmt.Println(sc.Text())
		lines++
	}
	return lines, sc.Err()
}

// runDemo wires a sender and monitor over UDP loopback, crashes the
// sender halfway, and shows the status flip.
func runDemo() {
	monEP, err := sfd.ListenUDP("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer monEP.Close()
	sndEP, err := sfd.ListenUDP("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer sndEP.Close()

	clk := sfd.NewRealClock()
	mon := sfd.NewMonitor(clk, sfd.SFDFactory(sfd.Targets{MaxTD: time.Second, MaxMR: 1, MinQAP: 0.99}), sfd.MonitorOptions{})
	recv := sfd.NewHeartbeatReceiver(monEP, clk, mon.Observe)
	recv.Start()

	snd := sfd.NewHeartbeatSender(sndEP, monEP.Addr(), 20*time.Millisecond, clk)
	snd.Start()
	fmt.Println("demo: sender heartbeating over UDP loopback at 50 Hz")

	time.Sleep(2 * time.Second)
	printDemo(mon, clk, "while alive")
	fmt.Println("demo: crashing the sender...")
	snd.Crash()
	time.Sleep(1500 * time.Millisecond)
	printDemo(mon, clk, "after crash")
}

func printDemo(mon *sfd.Monitor, clk sfd.Clock, label string) {
	for _, r := range mon.Snapshot(clk.Now()) {
		fmt.Printf("demo [%s]: peer=%s status=%s suspicion=%.3f\n",
			label, r.Peer, r.Status, r.SuspicionLevel)
	}
}

func exitChan(duration time.Duration) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		if duration > 0 {
			select {
			case <-sig:
			case <-time.After(duration):
			}
			return
		}
		<-sig
	}()
	return done
}

func waitForExit(duration time.Duration) { <-exitChan(duration) }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sfdmon: %v\n", err)
	os.Exit(1)
}
