// sfdmon is a live UDP heartbeat daemon: run it as a sender on the
// monitored host and as a monitor on the observing host. The monitor
// drives an SFD (or a baseline detector) per peer through the sharded
// registry, logs failure-bus transitions, evicts peers that stay
// offline, and prints a status table — the paper's PlanetLab motivation
// turned into a tool ("it is impractical to login one by one without
// any guidance").
//
// Usage:
//
//	# on the monitored host:
//	sfdmon -mode send -to 10.0.0.2:7946 -interval 100ms
//
//	# on the monitoring host (with the HTTP status surface):
//	sfdmon -mode monitor -listen :7946 -refresh 1s -serve :8080
//
//	# loopback demo in one process:
//	sfdmon -mode demo
//
//	# multi-monitor deployment: every monitor also gossips suspicion
//	# digests with its peers and publishes corroborated Global* verdicts:
//	sfdmon -mode monitor -listen :7946 -serve :8080 \
//	    -gossip -gossip-peers 10.0.0.3:7946,10.0.0.4:7946 -gossip-quorum 2
//
//	# chaos drill: replay a scripted impairment timeline against the
//	# live inbound stream (JSON file or inline DSL; see internal/chaos):
//	sfdmon -mode monitor -listen :7946 -serve :8080 \
//	    -chaos '2s+10s:loss(rate=0.4,burst=6);15s+5s:partition(dir=in)'
//
//	# crash-safe state: checkpoint detector/registry/gossip state to disk
//	# and warm-restart from it (SIGINT/SIGTERM flushes a final snapshot):
//	sfdmon -mode monitor -listen :7946 -state-dir /var/lib/sfdmon
//
//	# tail one subtree of a running monitor's failure events (NDJSON over
//	# the monitor's /watch endpoint; `+`/`#` wildcards route in the
//	# monitor's topic trie, so only matching events cross the wire):
//	sfdmon -mode watch -url http://10.0.0.2:8080 -filter 'eu/+/web-1/#'
//
// With -serve, the monitor exposes GET /status (full JSON snapshot),
// GET /vars (counters + per-shard occupancy), GET /metrics (Prometheus
// text exposition: receiver, registry, gossip, chaos, and per-stream
// detector QoS), GET /healthz, with -gossip GET /gossip (verdicts, peer
// weights, opinion table), and with -chaos GET /chaos (scenario,
// injection counters, active impairments; ?log=1 for the injection
// log). -pprof additionally mounts the Go profiler under /debug/pprof/
// on the same listener.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	sfd "repro"
)

func main() {
	var (
		mode     = flag.String("mode", "demo", "send, monitor, watch, or demo")
		to       = flag.String("to", "127.0.0.1:7946", "send: monitor address")
		listen   = flag.String("listen", ":7946", "monitor: bind address")
		interval = flag.Duration("interval", 100*time.Millisecond, "send: heartbeat interval")
		refresh  = flag.Duration("refresh", time.Second, "monitor: status print interval")
		maxTD    = flag.Duration("maxtd", 2*time.Second, "monitor: target max detection time")
		maxMR    = flag.Float64("maxmr", 0.5, "monitor: target max mistake rate")
		minQAP   = flag.Float64("minqap", 0.99, "monitor: target min QAP")
		serve    = flag.String("serve", "", "monitor: HTTP status address (e.g. :8080; empty = disabled)")
		pprofOn  = flag.Bool("pprof", false, "monitor: mount /debug/pprof/ on the -serve listener")
		evict    = flag.Duration("evict", time.Minute, "monitor: drop peers offline this long (<0 = never)")
		duration = flag.Duration("duration", 0, "exit after this long (0 = run until interrupted)")

		stateDir   = flag.String("state-dir", "", "monitor: directory for crash-safe state snapshots (empty = no persistence)")
		checkpoint = flag.Duration("checkpoint", 30*time.Second, "monitor: full-snapshot interval when -state-dir is set")

		gossipOn       = flag.Bool("gossip", false, "monitor: exchange suspicion digests with peer monitors")
		gossipPeers    = flag.String("gossip-peers", "", "monitor: comma-separated peer monitor addresses")
		gossipID       = flag.String("gossip-id", "", "monitor: gossip identity (default: the bound address)")
		gossipInterval = flag.Duration("gossip-interval", 250*time.Millisecond, "monitor: anti-entropy round period")
		gossipQuorum   = flag.Int("gossip-quorum", 2, "monitor: concurring monitors needed for a global verdict")
		gossipSeed     = flag.Int64("gossip-seed", 0, "monitor: peer-selection seed (0 = default)")

		chaosSpec = flag.String("chaos", "", "scenario to inject: a JSON file path or the flag DSL (see internal/chaos)")
		chaosSeed = flag.Int64("chaos-seed", 0, "override the scenario's injection seed (0 = keep)")

		watchURL    = flag.String("url", "http://127.0.0.1:8080", "watch: base URL of a monitor's HTTP surface")
		watchFilter = flag.String("filter", "#", "watch: topic filter over stream names (+/# wildcards)")
		watchBuf    = flag.Int("buf", 256, "watch: server-side subscription buffer (drop-oldest beyond it)")
		watchMax    = flag.Int("max", 0, "watch: exit after this many events (0 = stream until interrupted)")
	)
	flag.Parse()

	var chaosSc *sfd.ChaosScenario
	if *chaosSpec != "" {
		sc, err := loadScenario(*chaosSpec, *chaosSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sfdmon: -chaos: %v\n", err)
			os.Exit(2)
		}
		chaosSc = &sc
	}

	switch *mode {
	case "send":
		runSender(*to, *interval, *duration, chaosSc)
	case "monitor":
		var gc *gossipConfig
		if *gossipOn {
			gc = &gossipConfig{
				peers:    splitPeers(*gossipPeers),
				id:       *gossipID,
				interval: *gossipInterval,
				quorum:   *gossipQuorum,
				seed:     *gossipSeed,
			}
			if len(gc.peers) == 0 {
				fmt.Fprintln(os.Stderr, "sfdmon: -gossip requires -gossip-peers")
				os.Exit(2)
			}
		}
		runMonitor(*listen, *serve, *refresh,
			sfd.Targets{MaxTD: *maxTD, MaxMR: *maxMR, MinQAP: *minQAP}, *evict, *duration, gc, *pprofOn, chaosSc,
			*stateDir, *checkpoint)
	case "watch":
		runWatch(*watchURL, *watchFilter, *watchBuf, *watchMax, *duration)
	case "demo":
		runDemo()
	default:
		fmt.Fprintf(os.Stderr, "sfdmon: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// loadScenario resolves the -chaos flag: a readable file is parsed as
// JSON, anything else as the compact DSL. A nonzero seed flag overrides
// the scenario's own.
func loadScenario(spec string, seed int64) (sfd.ChaosScenario, error) {
	var sc sfd.ChaosScenario
	if b, err := os.ReadFile(spec); err == nil {
		sc, err = sfd.ParseChaosScenario(b)
		if err != nil {
			return sc, fmt.Errorf("%s: %w", spec, err)
		}
	} else {
		var derr error
		sc, derr = sfd.ParseChaosDSL(spec)
		if derr != nil {
			return sc, fmt.Errorf("neither a readable file (%v) nor a valid scenario DSL (%v)", err, derr)
		}
	}
	if seed != 0 {
		sc.Seed = seed
	}
	return sc, nil
}

func runSender(to string, interval, duration time.Duration, chaosSc *sfd.ChaosScenario) {
	udp, err := sfd.ListenUDP(":0")
	if err != nil {
		fatal(err)
	}
	defer udp.Close()
	var ep sfd.Endpoint = udp
	clk := sfd.NewRealClock()
	hbClk := clk

	// A send-side scenario impairs outbound heartbeats at the source and
	// lets skew steps drag the sender's timestamp clock.
	var ctl *sfd.ChaosController
	if chaosSc != nil {
		ctl = sfd.NewChaosController(clk, chaosSc.Seed)
		skewed := sfd.NewSkewedClock(clk)
		ctl.AttachClock(skewed)
		hbClk = skewed
		cep := sfd.WrapChaos(ep, ctl)
		cep.Start()
		ep = cep
		if err := ctl.Play(*chaosSc); err != nil {
			fatal(err)
		}
		fmt.Printf("sfdmon: chaos scenario %q armed (seed %d, %d steps)\n",
			chaosSc.Name, ctl.Seed(), len(chaosSc.Steps))
	}

	snd := sfd.NewHeartbeatSender(ep, to, interval, hbClk)
	snd.Start()
	fmt.Printf("sfdmon: heartbeating to %s every %v (from %s)\n", to, interval, udp.Addr())
	waitForExit(duration)
	snd.Stop()
	fmt.Printf("sfdmon: sent %d heartbeats\n", snd.Sent())
	if ctl != nil {
		c := ctl.Counters()
		fmt.Printf("sfdmon: chaos injected loss=%d partition=%d delayed=%d reordered=%d duplicated=%d truncated=%d\n",
			c.LossDrops, c.PartDrops, c.Delayed, c.Reordered, c.Duplicated, c.Truncated)
	}
}

// gossipConfig carries the -gossip* flags into runMonitor.
type gossipConfig struct {
	peers    []string
	id       string
	interval time.Duration
	quorum   int
	seed     int64
}

func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func runMonitor(listen, serve string, refresh time.Duration, targets sfd.Targets, evict, duration time.Duration, gc *gossipConfig, pprofOn bool, chaosSc *sfd.ChaosScenario, stateDir string, checkpoint time.Duration) {
	udp, err := sfd.ListenUDP(listen)
	if err != nil {
		fatal(err)
	}
	defer udp.Close()
	var ep sfd.Endpoint = udp
	clk := sfd.NewRealClock()

	// A monitor-side scenario sits between the socket and the receiver,
	// impairing the live inbound heartbeat/gossip stream.
	var ctl *sfd.ChaosController
	if chaosSc != nil {
		ctl = sfd.NewChaosController(clk, chaosSc.Seed)
		cep := sfd.WrapChaos(ep, ctl)
		cep.Start()
		defer cep.Close()
		ep = cep
		if err := ctl.Play(*chaosSc); err != nil {
			fatal(err)
		}
		fmt.Printf("sfdmon: chaos scenario %q armed (seed %d, %d steps)\n",
			chaosSc.Name, ctl.Seed(), len(chaosSc.Steps))
	}

	reg := sfd.NewRegistry(clk, sfd.SFDFactory(targets), sfd.RegistryOptions{
		EvictAfter:         evict,
		StateDir:           stateDir,
		CheckpointInterval: checkpoint,
	})
	reg.Start()
	defer reg.Stop()
	if stateDir != "" {
		// Start restored any valid snapshot (warm restart) and armed the
		// checkpointer; report what it found.
		switch n, err := reg.RestoredStreams(); {
		case err != nil && errors.Is(err, sfd.ErrNoSnapshot):
			fmt.Printf("sfdmon: no state snapshot in %s (cold start), checkpointing every %v\n", stateDir, checkpoint)
		case err != nil:
			fmt.Fprintf(os.Stderr, "sfdmon: state restore failed, cold start: %v\n", err)
		default:
			fmt.Printf("sfdmon: warm restart: restored %d streams from %s\n", n, stateDir)
		}
	}
	recv := sfd.NewHeartbeatReceiver(ep, clk, reg.Observe)

	// Gossip shares the heartbeat socket: digests (magic "SG") fall
	// through the receiver's heartbeat decoder into the gossiper.
	var gsp *sfd.Gossiper
	if gc != nil {
		gsp = sfd.NewGossiper(ep, clk, reg, gc.peers, sfd.GossipOptions{
			ID:       gc.id,
			Interval: gc.interval,
			Quorum:   gc.quorum,
			Seed:     gc.seed,
		})
		recv.SetForeign(func(in sfd.Inbound) { gsp.HandleDatagram(in.Payload) })
		gsp.Start()
		defer gsp.Stop()
	}
	recv.Start()

	// One /metrics page for the whole pipeline: the receiver and gossiper
	// register their instruments into the registry's set.
	recv.InstrumentMetrics(reg.Metrics())
	if gsp != nil {
		gsp.InstrumentMetrics(reg.Metrics())
	}
	if ctl != nil {
		ctl.InstrumentMetrics(reg.Metrics())
	}

	fmt.Printf("sfdmon: monitoring on %s (targets %v)\n", ep.Addr(), targets)
	if gsp != nil {
		fmt.Printf("sfdmon: gossiping as %s with %v (quorum %d, every %v)\n",
			gsp.ID(), gsp.Peers(), gc.quorum, gsp.Options().Interval)
	}

	// Log every failure-bus transition; eviction also clears the
	// receiver's stale filter so both tables stay bounded under churn.
	sub := reg.Subscribe(1024)
	defer sub.Close()
	go func() {
		for ev := range sub.C() {
			fmt.Printf("event: %s\n", ev)
			if ev.Type == sfd.EventEvicted {
				recv.Forget(ev.Peer)
			}
		}
	}()

	if serve != "" {
		mux := http.NewServeMux()
		mux.Handle("/", reg.Handler())
		surfaces := "/status (also /vars, /metrics, /healthz"
		if gsp != nil {
			mux.Handle("/gossip", gsp.Handler())
			surfaces += ", /gossip"
		}
		if ctl != nil {
			mux.Handle("/chaos", ctl.Handler())
			surfaces += ", /chaos"
		}
		if pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			surfaces += ", /debug/pprof"
		}
		srv := &http.Server{Addr: serve, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "sfdmon: http: %v\n", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("sfdmon: serving http://%s%s)\n", serve, surfaces)
	}

	ticker := time.NewTicker(refresh)
	defer ticker.Stop()
	done := exitChan(duration)
loop:
	for {
		select {
		case <-done:
			break loop
		case <-ticker.C:
			now := clk.Now()
			fmt.Printf("--- %s ---\n", time.Now().Format(time.RFC3339))
			fmt.Print(sfd.FormatSnapshot(reg.Snapshot(now)))
			c := reg.Counters()
			if d := sub.Dropped(); d > 0 {
				fmt.Printf("warning: %d bus events dropped by the log subscriber\n", d)
			}
			fmt.Printf("counters: hb=%d stale=%d suspects=%d trusts=%d offline=%d evicted=%d streams=%d\n",
				c.Heartbeats, c.Stale, c.Suspects, c.Trusts, c.Offlines, c.Evictions, c.Streams)
		}
	}

	// Graceful shutdown (SIGINT/SIGTERM or -duration), in dependency
	// order: close the socket first so the receiver quiesces and no new
	// arrivals race the final snapshot, stop the gossiper, then stop the
	// registry — which flushes a full state snapshot when -state-dir is
	// set — and exit 0. The remaining defers (HTTP server, chaos wrapper)
	// are idempotent backstops.
	fmt.Println("sfdmon: shutting down")
	udp.Close()
	recv.Wait()
	if gsp != nil {
		gsp.Stop()
	}
	reg.Stop()
	if stateDir != "" {
		fmt.Printf("sfdmon: final state snapshot flushed to %s\n", stateDir)
	}
}

// runWatch tails a monitor's /watch endpoint: one HTTP long-poll whose
// NDJSON lines (hello, events, keepalive heartbeats with this
// connection's drop accounting) are printed as they arrive. The filter
// is matched server-side in the monitor's topic trie, so a narrow
// watcher costs the monitor — and the network — only its own events.
func runWatch(base, filter string, buf, max int, duration time.Duration) {
	q := url.Values{}
	q.Set("filter", filter)
	if buf > 0 {
		q.Set("buf", strconv.Itoa(buf))
	}
	if max > 0 {
		q.Set("max", strconv.Itoa(max))
	}
	target := strings.TrimRight(base, "/") + "/watch?" + q.Encode()
	resp, err := http.Get(target)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		fatal(fmt.Errorf("%s: %s: %s", target, resp.Status, strings.TrimSpace(string(msg))))
	}
	fmt.Fprintf(os.Stderr, "sfdmon: watching %s with filter %q\n", base, filter)

	// SIGINT/SIGTERM or -duration closes the body, unblocking the scanner.
	done := exitChan(duration)
	go func() {
		<-done
		resp.Body.Close()
	}()

	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		fmt.Println(sc.Text())
		lines++
	}
	select {
	case <-done: // local shutdown: a read error on the closed body is expected
	default:
		if err := sc.Err(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "sfdmon: watch stream closed after %d lines\n", lines)
}

// runDemo wires a sender and monitor over UDP loopback, crashes the
// sender halfway, and shows the status flip.
func runDemo() {
	monEP, err := sfd.ListenUDP("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer monEP.Close()
	sndEP, err := sfd.ListenUDP("127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer sndEP.Close()

	clk := sfd.NewRealClock()
	mon := sfd.NewMonitor(clk, sfd.SFDFactory(sfd.Targets{MaxTD: time.Second, MaxMR: 1, MinQAP: 0.99}), sfd.MonitorOptions{})
	recv := sfd.NewHeartbeatReceiver(monEP, clk, mon.Observe)
	recv.Start()

	snd := sfd.NewHeartbeatSender(sndEP, monEP.Addr(), 20*time.Millisecond, clk)
	snd.Start()
	fmt.Println("demo: sender heartbeating over UDP loopback at 50 Hz")

	time.Sleep(2 * time.Second)
	printDemo(mon, clk, "while alive")
	fmt.Println("demo: crashing the sender...")
	snd.Crash()
	time.Sleep(1500 * time.Millisecond)
	printDemo(mon, clk, "after crash")
}

func printDemo(mon *sfd.Monitor, clk sfd.Clock, label string) {
	for _, r := range mon.Snapshot(clk.Now()) {
		fmt.Printf("demo [%s]: peer=%s status=%s suspicion=%.3f\n",
			label, r.Peer, r.Status, r.SuspicionLevel)
	}
}

func exitChan(duration time.Duration) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		if duration > 0 {
			select {
			case <-sig:
			case <-time.After(duration):
			}
			return
		}
		<-sig
	}()
	return done
}

func waitForExit(duration time.Duration) { <-exitChan(duration) }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sfdmon: %v\n", err)
	os.Exit(1)
}
