// sfdload is the real-traffic load harness: it boots one or more
// in-process monitors, aims a fleet of tens of thousands of real UDP
// heartbeat senders at them (wire-v3 named streams multiplexed over a
// socket pool), injects scripted kill / restart / NAT-rebind faults on
// a timeline, optionally shapes each cohort's outbound path with chaos
// impairments, and scores ground-truth detection latency by marking
// each injected failure and matching it against the monitors' /watch
// NDJSON streams. The result is a JSON report with detection-latency
// p50/p95/p99, TD/MR/QAP aggregates, and send/receive/spurious
// counters, gated by the scenario's bounds (exit 1 on violation).
//
// Usage:
//
//	# the built-in presets:
//	sfdload -preset datacenter -count 50000
//	sfdload -preset mobile
//	sfdload -preset mixed-fleet -duration 3m -json report.json
//
//	# the federation-HA tier: leaves + an aggregator pair under load,
//	# the active aggregator killed and restarted mid-run, scored for
//	# /fleet availability gap, promotion latency, and lost transitions:
//	sfdload -preset federation-ha -count 500 -duration 45s
//
//	# scale and pacing overrides:
//	sfdload -preset datacenter -count 2000 -duration 90s -interval 500ms -jitter 0.05
//
//	# a custom scenario from a JSON spec file (the LoadSpec shape):
//	sfdload -spec scenario.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	sfd "repro"
)

func main() {
	var (
		preset   = flag.String("preset", "datacenter", "built-in scenario: datacenter, mobile, or mixed-fleet")
		list     = flag.Bool("list", false, "list presets and exit")
		spec     = flag.String("spec", "", "JSON scenario file (overrides -preset)")
		count    = flag.Int("count", 0, "override total sender count (0 = preset default)")
		duration = flag.Duration("duration", 0, "override run duration (0 = preset default)")
		interval = flag.Duration("interval", 0, "override every cohort's heartbeat interval (0 = keep)")
		jitter   = flag.Float64("jitter", -1, "override every cohort's jitter fraction in [0,1) (-1 = keep)")
		ramp     = flag.Duration("ramp", -1, "override every cohort's start ramp (-1 = keep)")
		monitors = flag.Int("monitors", 0, "override monitor count (0 = preset default)")
		seed     = flag.Int64("seed", 0, "scenario seed (0 = preset default)")
		jsonOut  = flag.String("json", "", "write the JSON report here ('-' = stdout; default: stdout summary only)")
		quiet    = flag.Bool("quiet", false, "suppress progress lines")
	)
	flag.Parse()

	if *list {
		for _, p := range sfd.LoadPresets() {
			fmt.Println(p)
		}
		fmt.Println("federation-ha")
		return
	}

	// The federation-HA scenario has its own topology-shaped spec and
	// report; it dispatches before the flat-fleet path.
	if *spec == "" && *preset == "federation-ha" {
		runFederation(*count, *duration, *interval, *seed, *jsonOut, *quiet)
		return
	}

	var sc sfd.LoadSpec
	if *spec != "" {
		b, err := os.ReadFile(*spec)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(b, &sc); err != nil {
			fatal(fmt.Errorf("%s: %w", *spec, err))
		}
	} else {
		var err error
		if sc, err = sfd.LoadPreset(*preset); err != nil {
			fatal(err)
		}
	}
	if *count > 0 {
		sc.Total = *count
	}
	if *duration > 0 {
		sc.Duration = *duration
	}
	if *monitors > 0 {
		sc.Monitors = *monitors
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	for i := range sc.Cohorts {
		if *interval > 0 {
			sc.Cohorts[i].Pacer.Interval = *interval
		}
		if *jitter >= 0 {
			sc.Cohorts[i].Pacer.Jitter = *jitter
		}
		if *ramp >= 0 {
			sc.Cohorts[i].Pacer.Ramp = *ramp
		}
	}

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	fmt.Fprintf(os.Stderr, "sfdload: scenario %q: %d senders, %d monitor(s), %v\n",
		sc.Name, sc.Total, max(sc.Monitors, 1), sc.Duration)
	start := time.Now()
	rep, err := sfd.RunLoad(sc, progress)
	if err != nil {
		fatal(err)
	}

	switch *jsonOut {
	case "":
		// summary only
	case "-":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	default:
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sfdload: report written to %s\n", *jsonOut)
	}

	gt := rep.Tracker
	fmt.Printf("sfdload: %s: %d senders for %v (wall %v)\n",
		rep.Scenario, rep.Total, sc.Duration, time.Since(start).Round(time.Second))
	fmt.Printf("  injected kills     %d (detected %d, missed %d; rebinds %d, restarts %d)\n",
		gt.Injected, gt.Detected, gt.Missed, gt.Rebinds, gt.Restarts)
	fmt.Printf("  spurious           %d (recovered %d)\n", gt.Spurious, gt.Recovered)
	if gt.Local.Samples > 0 {
		fmt.Printf("  detection latency  p50=%.2fs p95=%.2fs p99=%.2fs mean=%.2fs max=%.2fs (n=%d)\n",
			gt.Local.P50, gt.Local.P95, gt.Local.P99, gt.Local.Mean, gt.Local.Max, gt.Local.Samples)
	}
	if gt.Global.Samples > 0 {
		fmt.Printf("  global latency     p50=%.2fs p99=%.2fs (n=%d)\n",
			gt.Global.P50, gt.Global.P99, gt.Global.Samples)
	}
	for _, m := range rep.Monitors {
		fmt.Printf("  monitor %-21s hb=%d stale=%d suspects=%d trusts=%d offline=%d streams=%d tuned=%d\n",
			m.Addr, m.Heartbeats, m.Stale, m.Suspects, m.Trusts, m.Offlines,
			m.QoS.Streams, m.QoS.Tuned)
		if m.UDPDropped > 0 {
			fmt.Printf("    udp: received=%d dropped=%d (ingest queue overflow)\n",
				m.UDPReceived, m.UDPDropped)
		}
		if m.QoS.Measured > 0 {
			fmt.Printf("    qos (n=%d)       TD=%.3fs MR=%.4f/s QAP=%.5f\n",
				m.QoS.Measured, m.QoS.MeanTDS, m.QoS.MeanMR, m.QoS.MeanQAP)
		}
	}
	if rep.Pass {
		fmt.Println("  bounds             PASS")
		return
	}
	fmt.Println("  bounds             FAIL")
	for _, v := range rep.Violations {
		fmt.Printf("    - %s\n", v)
	}
	os.Exit(1)
}

// runFederation drives the federation-HA preset: -count overrides the
// per-leaf stream count, -interval the heartbeat period; the digest
// interval, kill timeline, and bounds come from the preset.
func runFederation(count int, duration, interval time.Duration, seed int64, jsonOut string, quiet bool) {
	sc := sfd.LoadFederationPreset()
	if count > 0 {
		sc.StreamsPerLeaf = count
	}
	if duration > 0 {
		sc.Duration = duration
	}
	if interval > 0 {
		sc.Interval = interval
	}
	if seed != 0 {
		sc.Seed = seed
	}
	var progress io.Writer = os.Stderr
	if quiet {
		progress = nil
	}
	fmt.Fprintf(os.Stderr, "sfdload: scenario %q: %d regions × %d leaves × %d streams, %v\n",
		sc.Name, sc.Regions, sc.LeavesPerRegion, sc.StreamsPerLeaf, sc.Duration)
	rep, err := sfd.RunLoadFederation(sc, progress)
	if err != nil {
		fatal(err)
	}

	switch jsonOut {
	case "":
	case "-":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	default:
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sfdload: report written to %s\n", jsonOut)
	}

	fmt.Printf("sfdload: %s: %d streams across %d leaves for %v\n",
		rep.Scenario, rep.TotalStreams, rep.Regions*rep.LeavesPerRegion, sc.Duration)
	fmt.Printf("  aggregator kill    %s (restart %.1fs after)\n", rep.KilledAgg, rep.RestartAfterS)
	fmt.Printf("  promotion          %.2fs (bound %v); failback %.2fs; final leader %s\n",
		rep.PromotionS, rep.Bounds.MaxPromotion, rep.FailbackS, rep.FinalLeader)
	fmt.Printf("  /fleet polls       %d served / %d; longest gap %.2fs (bound %v)\n",
		rep.Served, rep.Polls, rep.FleetGapS, rep.Bounds.MaxFleetGap)
	fmt.Printf("  transitions        pre-kill %d, at promotion %d, final %d (injected kills %d, lost %d)\n",
		rep.OfflinesPreKill, rep.OfflinesAtPromotion, rep.OfflinesFinal,
		rep.InjectedStreamKills, rep.LostTransitions)
	if rep.Detection.Samples > 0 {
		fmt.Printf("  leaf detection     p50=%.2fs p99=%.2fs (n=%d)\n",
			rep.Detection.P50, rep.Detection.P99, rep.Detection.Samples)
	}
	if rep.Pass {
		fmt.Println("  bounds             PASS")
		return
	}
	fmt.Println("  bounds             FAIL")
	for _, v := range rep.Violations {
		fmt.Printf("    - %s\n", v)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sfdload: %v\n", err)
	os.Exit(2)
}
