package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/registry
cpu: AMD EPYC 7B13
BenchmarkRegistryIngest-8   	24426998	        48.51 ns/op	       0 B/op	       0 allocs/op
BenchmarkRegistryIngest10k-8	  123456	      9583 ns/op
PASS
ok  	repro/internal/registry	2.034s
pkg: repro/internal/trace
BenchmarkTable2_TraceStats 	       1	 501234567 ns/op	        12.50 beats/s
some stray log line the package printed
ok  	repro/internal/trace	0.6s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}

	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkRegistryIngest" || b.Procs != 8 || b.Package != "repro/internal/registry" {
		t.Fatalf("first benchmark: %+v", b)
	}
	if b.Iterations != 24426998 || b.Metrics["ns/op"] != 48.51 || b.Metrics["allocs/op"] != 0 {
		t.Fatalf("first benchmark numbers: %+v", b)
	}

	// No -N suffix, custom metric, later pkg header.
	b = rep.Benchmarks[2]
	if b.Name != "BenchmarkTable2_TraceStats" || b.Procs != 0 || b.Package != "repro/internal/trace" {
		t.Fatalf("third benchmark: %+v", b)
	}
	if b.Metrics["beats/s"] != 12.5 {
		t.Fatalf("custom metric lost: %+v", b.Metrics)
	}
}

func TestParseSkipsFailuresAndGarbage(t *testing.T) {
	in := `Benchmark
BenchmarkBroken-4	--- FAIL
Benchmarked something unrelated
`
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("garbage parsed as results: %+v", rep.Benchmarks)
	}
}
