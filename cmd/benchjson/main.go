// benchjson converts `go test -bench` text output into a stable JSON
// document, so CI can archive benchmark numbers as an artifact and
// regressions can be diffed across runs.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchjson -o BENCH_ci.json
//
// The input is the standard bench format: per-package headers (goos,
// goarch, pkg, cpu) followed by result lines of the shape
//
//	BenchmarkName-8   124   9583 ns/op   120 B/op   3 allocs/op
//
// Every value/unit pair after the iteration count lands in the
// benchmark's "metrics" map (ns/op, B/op, allocs/op, MB/s, and any
// custom ReportMetric units alike).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Package    string             `json:"package,omitempty"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the document benchjson emits.
type Report struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		out    = flag.String("o", "", "output file (default stdout)")
		indent = flag.Bool("indent", true, "pretty-print the JSON")
	)
	flag.Parse()

	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	if *indent {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse consumes `go test -bench` output. Unrecognized lines (PASS, ok,
// test logs) are skipped: bench output is interleaved with whatever the
// packages print.
func parse(r io.Reader) (Report, error) {
	var rep Report
	rep.Benchmarks = []Benchmark{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseResult(line); ok {
				b.Package = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseResult decodes one "BenchmarkX-N iters v unit v unit ..." line.
func parseResult(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Metrics: map[string]float64{}}
	// A trailing -N on the name is GOMAXPROCS, by bench convention.
	if i := strings.LastIndexByte(b.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false // e.g. "BenchmarkX	--- FAIL"
	}
	b.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
