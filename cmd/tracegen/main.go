// tracegen emits synthetic WAN heartbeat traces calibrated to the
// paper's Table II, in the repository's binary format or CSV.
//
// Usage:
//
//	tracegen -env WAN-1 -n 100000 -o wan1.hbtr
//	tracegen -env WAN-JPCH -csv -o jpch.csv
//	tracegen -list
//	tracegen -env WAN-2 -n 50000 -stats       # print Table II row only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		env   = flag.String("env", "WAN-1", "WAN environment preset")
		n     = flag.Int("n", trace.DefaultCount, "heartbeats to generate")
		seed  = flag.Int64("seed", 0, "override the preset PRNG seed (0 keeps default)")
		out   = flag.String("o", "", "output file (default stdout)")
		csv   = flag.Bool("csv", false, "write CSV instead of binary")
		stats = flag.Bool("stats", false, "print statistics only, no trace output")
		list  = flag.Bool("list", false, "list presets and exit")
		full  = flag.Bool("full", false, "use the paper's full heartbeat count for the environment")
	)
	flag.Parse()

	if *list {
		for _, name := range trace.PresetNames() {
			gp, _ := trace.Preset(name)
			fmt.Printf("%-9s %s (%s) → %s (%s), Δt=%v, RTT=%v, paper N=%d\n",
				name, gp.Meta.Sender, gp.Meta.SenderHost, gp.Meta.Receiver, gp.Meta.ReceiverHost,
				gp.Meta.Interval, gp.Meta.RTT, trace.PaperCounts[name])
		}
		return
	}

	gp, err := trace.Preset(*env)
	if err != nil {
		fatal(err)
	}
	gp.Count = *n
	if *full {
		gp.Count = trace.PaperCounts[*env]
	}
	if *seed != 0 {
		gp.Seed = *seed
	}

	if *stats {
		st := trace.Analyze(*env, trace.NewGenerator(gp))
		fmt.Println(trace.TableHeader())
		fmt.Println(st.TableRow())
		fmt.Printf("delay: mean=%.3fms std=%.3fms min=%.3fms max=%.3fms\n",
			st.DelayMeanMS, st.DelayStdMS, st.DelayMinMS, st.DelayMaxMS)
		fmt.Printf("loss bursts: n=%d max=%d mean=%.1f\n", st.LossBursts, st.MaxBurstLen, st.MeanBurstLen)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	var written int
	if *csv {
		tr := trace.Collect(gp.Meta, trace.NewGenerator(gp))
		err = trace.WriteCSV(w, tr)
		written = tr.Len()
	} else {
		// Binary output streams in constant memory, so even the paper's
		// ≈7M-heartbeat counts (-full) never materialize a trace.
		written, err = trace.WriteStream(w, gp.Meta, trace.NewGenerator(gp))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d heartbeats (%s)\n", written, *env)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
