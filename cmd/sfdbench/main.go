// sfdbench regenerates the paper's tables and figures from the
// calibrated synthetic WAN traces.
//
// Usage:
//
//	sfdbench                     # run every experiment at default scale
//	sfdbench -exp fig6           # one experiment
//	sfdbench -exp list           # list experiment IDs
//	sfdbench -n 500000 -points 32
//	sfdbench -full               # paper-scale traces (≈7M heartbeats each)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment ID (table1, table2, fig6, fig7, fig9, fig10, window, selftune, cluster), 'all', or 'list'")
		n      = flag.Int("n", 0, "heartbeats per trace (default 200000)")
		points = flag.Int("points", 0, "sweep points per curve (default 24)")
		ws     = flag.Int("ws", 0, "sliding window size (default 1000, the paper's WS)")
		full   = flag.Bool("full", false, "use the paper's full heartbeat counts (slow)")
	)
	flag.Parse()

	cfg := bench.Config{Heartbeats: *n, SweepPoints: *points, WindowSize: *ws, Full: *full}

	if *exp == "list" {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	run := func(e bench.Experiment) {
		fmt.Printf("==================================================================\n")
		fmt.Printf("%s: %s\n", e.ID, e.Title)
		fmt.Printf("paper: %s\n", e.Paper)
		fmt.Printf("------------------------------------------------------------------\n")
		start := time.Now()
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "sfdbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			run(e)
		}
		return
	}
	e, ok := bench.Get(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "sfdbench: unknown experiment %q (try -exp list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
