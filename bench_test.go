// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§V). Each iteration regenerates the corresponding
// artefact at a reduced scale (full paper scale is available through
// cmd/sfdbench -full); custom metrics surface the headline numbers so
// `go test -bench` output doubles as a compact reproduction report.
package sfd_test

import (
	"fmt"
	"io"
	"testing"

	sfd "repro"
	"repro/internal/bench"
	"repro/internal/clock"
	"repro/internal/qos"
	"repro/internal/trace"
)

// benchCfg keeps per-iteration cost moderate; the shape conclusions are
// already stable at this scale.
func benchCfg() bench.Config {
	return bench.Config{Heartbeats: 30_000, SweepPoints: 10, WindowSize: 500}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	cfg := benchCfg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_TraceGen regenerates Table I (the WAN host matrix).
func BenchmarkTable1_TraceGen(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2_TraceStats regenerates Table II: per-environment
// heartbeat statistics from the calibrated synthetic traces.
func BenchmarkTable2_TraceStats(b *testing.B) { runExperiment(b, "table2") }

// figBench sweeps the four detectors over one WAN trace and reports the
// figure's headline series characteristics as custom metrics.
func figBench(b *testing.B, env string) {
	cfg := benchCfg()
	tr, err := bench.MakeTrace(cfg, env)
	if err != nil {
		b.Fatal(err)
	}
	var curves []qos.Curve
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves = bench.FigureCurves(cfg, tr, bench.DefaultTargets())
	}
	b.StopTimer()
	for _, c := range curves {
		min, max := c.TDRange()
		switch c.Detector {
		case "SFD":
			b.ReportMetric(min.Seconds(), "SFD-TDmin-s")
			b.ReportMetric(max.Seconds(), "SFD-TDmax-s")
		case "Chen FD":
			b.ReportMetric(max.Seconds(), "Chen-TDmax-s")
		case "phi FD":
			b.ReportMetric(max.Seconds(), "phi-TDmax-s")
		}
	}
}

// BenchmarkFig6_MRvsTD regenerates Fig. 6 (mistake rate vs detection
// time, JP↔CH WAN).
func BenchmarkFig6_MRvsTD(b *testing.B) { figBench(b, "WAN-JPCH") }

// BenchmarkFig7_QAPvsTD regenerates Fig. 7 (query accuracy probability vs
// detection time, JP↔CH WAN — same sweep, QAP axis).
func BenchmarkFig7_QAPvsTD(b *testing.B) {
	cfg := benchCfg()
	tr, err := bench.MakeTrace(cfg, "WAN-JPCH")
	if err != nil {
		b.Fatal(err)
	}
	var curves []qos.Curve
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves = bench.FigureCurves(cfg, tr, bench.DefaultTargets())
	}
	b.StopTimer()
	for _, c := range curves {
		if c.Detector == "SFD" {
			if qap, ok := c.BestQAPAt(clock.Second); ok {
				b.ReportMetric(qap*100, "SFD-QAP-%")
			}
		}
	}
}

// BenchmarkFig9_MRvsTD_WAN1 regenerates Fig. 9 (WAN-1, USA→Japan).
func BenchmarkFig9_MRvsTD_WAN1(b *testing.B) { figBench(b, "WAN-1") }

// BenchmarkFig10_QAPvsTD_WAN1 regenerates Fig. 10 (WAN-1, QAP axis).
func BenchmarkFig10_QAPvsTD_WAN1(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkWindowSizeEffect regenerates the §V-C window-size study.
func BenchmarkWindowSizeEffect(b *testing.B) { runExperiment(b, "window") }

// BenchmarkSelfTuningConvergence regenerates the §V-B self-tuning
// narrative: SM trajectory and the infeasible-target response.
func BenchmarkSelfTuningConvergence(b *testing.B) {
	cfg := benchCfg()
	tr, err := bench.MakeTrace(cfg, "WAN-1")
	if err != nil {
		b.Fatal(err)
	}
	var finalMargin sfd.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := sfd.NewSFD(sfd.Config{
			WindowSize:    cfg.WindowSize,
			InitialMargin: 3 * clock.Second,
			Targets:       bench.DefaultTargets(),
		})
		sfd.Replay(tr.Stream(), det)
		finalMargin = det.Margin()
	}
	b.StopTimer()
	b.ReportMetric(finalMargin.Seconds(), "final-SM-s")
}

// BenchmarkClusterMonitoring regenerates the §VII multi-cloud scenario:
// crash detection across the Fig. 1 consortium.
func BenchmarkClusterMonitoring(b *testing.B) { runExperiment(b, "cluster") }

// BenchmarkDetectorObserve_* measure the per-heartbeat cost of each
// scheme at the paper's window size — the scalability argument of §V-C
// ("SFD has good scalability ... it can save valuable memory resources").
func benchObserve(b *testing.B, det sfd.Detector) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := clock.Time(i) * clock.Time(100*clock.Millisecond)
		det.Observe(uint64(i), t, t.Add(3*clock.Millisecond))
	}
}

func BenchmarkDetectorObserve_SFD(b *testing.B) {
	benchObserve(b, sfd.NewSFD(sfd.Config{Interval: 100 * clock.Millisecond, Targets: bench.DefaultTargets()}))
}

func BenchmarkDetectorObserve_Chen(b *testing.B) {
	benchObserve(b, sfd.NewChen(1000, 100*clock.Millisecond, 100*clock.Millisecond))
}

func BenchmarkDetectorObserve_Bertier(b *testing.B) {
	benchObserve(b, sfd.NewBertier(1000, 100*clock.Millisecond, sfd.BertierParams{}))
}

func BenchmarkDetectorObserve_Phi(b *testing.B) {
	benchObserve(b, sfd.NewPhi(1000, 8, 0))
}

// BenchmarkConsensusWithCrash measures one full SFD-driven
// Chandra–Toueg consensus (5 processes, round-0 coordinator crashed) —
// the executable form of the paper's ◇P_ac ⇒ consensus claim.
func BenchmarkConsensusWithCrash(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := sfd.NewConsensus(sfd.ConsensusOptions{
			N: 5, Seed: 5, StartDelay: 3 * clock.Second,
			Factory: func(string) sfd.Detector {
				return sfd.NewSFD(sfd.Config{
					WindowSize: 20, Interval: 50 * clock.Millisecond,
					InitialMargin: 200 * clock.Millisecond,
				})
			},
		})
		for j := 0; j < 5; j++ {
			c.Propose(j, "v")
		}
		c.CrashAt(0, clock.Second)
		if !c.Run(60 * clock.Second) {
			b.Fatal("consensus did not terminate")
		}
		if _, err := c.Agreement(); err != nil {
			b.Fatal(err)
		}
	}
}

// registryFleetSizes are the stream counts the fleet-scale registry is
// benchmarked at. The 1m point backs the million-stream ingest claim:
// Observe must hold 0 allocs/op and stay amortized sub-microsecond even
// when the shard maps and timer wheel hold a million live streams.
var registryFleetSizes = []struct {
	name string
	n    int
}{{"1k", 1_000}, {"10k", 10_000}, {"100k", 100_000}, {"1m", 1_000_000}}

// registryFleetSizesPersist caps the persistence variant at 100k: the
// armed checkpointer snapshots the full fleet off-clock, and a 1m
// snapshot turns a bench-smoke run into a disk benchmark.
var registryFleetSizesPersist = registryFleetSizes[:3]

// BenchmarkRegistryIngest measures the amortized per-heartbeat cost of
// Registry.Observe at fleet scale: hash → shard lock → detector update →
// deadline write. The lazy timer-wheel design keeps the hot path free of
// wheel operations, so this must stay sub-microsecond at 10k streams.
func BenchmarkRegistryIngest(b *testing.B) {
	for _, size := range registryFleetSizes {
		b.Run(size.name, func(b *testing.B) {
			reg := sfd.NewRegistry(sfd.NewSimClock(0), func(string) sfd.Detector {
				return sfd.NewFixed(500*clock.Millisecond, 1)
			}, sfd.RegistryOptions{Shards: 64})
			peers := make([]string, size.n)
			seqs := make([]uint64, size.n)
			for i := range peers {
				peers[i] = fmt.Sprintf("srv-%06d", i)
				reg.Observe(sfd.HeartbeatArrival{From: peers[i], Seq: 0, Send: 0, Recv: 0})
				seqs[i] = 1
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := i % size.n
				at := clock.Time(i) * clock.Time(clock.Microsecond)
				reg.Observe(sfd.HeartbeatArrival{From: peers[p], Seq: seqs[p], Send: at, Recv: at})
				seqs[p]++
			}
		})
	}
}

// BenchmarkRegistryIngestPersist is BenchmarkRegistryIngest with
// crash-safe persistence armed: state dir open, checkpointer started,
// delta subscription live. Snapshots and journal flushes run off the
// checkpoint timers, never on the ingest path, so Observe must stay at
// 0 allocs/op — the CI gate that keeps persistence off the hot path.
func BenchmarkRegistryIngestPersist(b *testing.B) {
	for _, size := range registryFleetSizesPersist {
		b.Run(size.name, func(b *testing.B) {
			reg := sfd.NewRegistry(sfd.NewSimClock(0), func(string) sfd.Detector {
				return sfd.NewFixed(500*clock.Millisecond, 1)
			}, sfd.RegistryOptions{Shards: 64, StateDir: b.TempDir()})
			reg.Start()
			defer reg.Stop()
			if reg.Checkpointer() == nil {
				b.Fatal("persistence not armed")
			}
			peers := make([]string, size.n)
			seqs := make([]uint64, size.n)
			for i := range peers {
				peers[i] = fmt.Sprintf("srv-%06d", i)
				reg.Observe(sfd.HeartbeatArrival{From: peers[i], Seq: 0, Send: 0, Recv: 0})
				seqs[i] = 1
			}
			// Prove the store is live before timing: one full snapshot.
			if err := reg.SaveSnapshot(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := i % size.n
				at := clock.Time(i) * clock.Time(clock.Microsecond)
				reg.Observe(sfd.HeartbeatArrival{From: peers[p], Seq: seqs[p], Send: at, Recv: at})
				seqs[p]++
			}
			// Keep teardown (Stop's final snapshot) out of the timings.
			b.StopTimer()
		})
	}
}

// BenchmarkFanoutPublish measures the publish-side cost of event fan-out
// at fleet scale: events drawn from a 100k-stream hierarchical name
// space are published to 1k or 10k subscribers. In filtered mode every
// subscriber holds a (region, cluster) subtree filter — 100 distinct
// subtrees, so each event matches ~1% of subscribers and the topic trie
// routes it to just those. In firehose mode the same subscribers take
// every event, the pre-trie behaviour. The ISSUE's acceptance gate:
// filtered publish must be ≥10× cheaper than firehose at 10k
// subscribers, because its cost scales with matches, not subscribers.
func BenchmarkFanoutPublish(b *testing.B) {
	// 10 regions × 10 clusters × 100 hosts × 10 services = 100k names;
	// the published events cycle through a uniform sample of them.
	names := make([]string, 4096)
	for i := range names {
		names[i] = fmt.Sprintf("r%d/c%d/h%d/s%d", i%10, (i/10)%10, i%100, i%10)
	}
	for _, nSubs := range []int{1_000, 10_000} {
		for _, mode := range []string{"filtered", "firehose"} {
			b.Run(fmt.Sprintf("%s-%dsubs", mode, nSubs), func(b *testing.B) {
				reg := sfd.NewRegistry(sfd.NewSimClock(0), func(string) sfd.Detector {
					return sfd.NewFixed(500*clock.Millisecond, 1)
				}, sfd.RegistryOptions{})
				bus := reg.Bus()
				for i := 0; i < nSubs; i++ {
					// buf=1, never drained: every delivery exercises the
					// full drop-oldest offer path in both modes.
					if mode == "firehose" {
						defer reg.Subscribe(1).Close()
						continue
					}
					sub, err := reg.SubscribeTopic(fmt.Sprintf("r%d/c%d/#", i%10, (i/10)%10), 1)
					if err != nil {
						b.Fatal(err)
					}
					defer sub.Close()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bus.Publish(sfd.Event{Type: sfd.EventSuspect, Peer: names[i%len(names)], At: sfd.Time(i)})
				}
				b.StopTimer()
				if mode == "filtered" {
					b.ReportMetric(float64(bus.FanoutStats().Matches)/float64(b.N), "deliv/op")
				} else {
					b.ReportMetric(float64(nSubs), "deliv/op")
				}
			})
		}
	}
}

// BenchmarkRegistryTimerWheel measures one wheel tick of fleet time in
// steady state: per iteration a tenth of the fleet heartbeats (each
// stream beats every 10 ticks) and Tick advances the wheel, firing and
// lazily re-arming each stream's entry once per timeout period. No
// status transitions occur; this is the pure scheduling load.
func BenchmarkRegistryTimerWheel(b *testing.B) {
	const tick = 10 * clock.Millisecond
	const beatEvery = 10
	for _, size := range registryFleetSizes {
		b.Run(size.name, func(b *testing.B) {
			reg := sfd.NewRegistry(sfd.NewSimClock(0), func(string) sfd.Detector {
				return sfd.NewFixed(15*tick, 1)
			}, sfd.RegistryOptions{Shards: 64, WheelTick: tick, MaxSilence: -1})
			peers := make([]string, size.n)
			seqs := make([]uint64, size.n)
			for i := range peers {
				peers[i] = fmt.Sprintf("srv-%06d", i)
				reg.Observe(sfd.HeartbeatArrival{From: peers[i], Seq: 0, Send: 0, Recv: 0})
				seqs[i] = 1
			}
			now := clock.Time(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now = now.Add(tick)
				for p := i % beatEvery; p < size.n; p += beatEvery {
					reg.Observe(sfd.HeartbeatArrival{From: peers[p], Seq: seqs[p], Send: now, Recv: now})
					seqs[p]++
				}
				reg.Tick(now)
			}
			b.StopTimer()
			if c := reg.Counters(); c.Suspects != 0 {
				b.Fatalf("steady-state bench produced %d suspects", c.Suspects)
			}
			b.ReportMetric(float64(size.n), "streams")
		})
	}
}

// countingEndpoint is a datagram sink that only counts what a
// federation leaf pushes — the benchmark measures digest production,
// not delivery.
type countingEndpoint struct{ bytes int }

func (c *countingEndpoint) Send(to string, payload []byte) error {
	c.bytes += len(payload)
	return nil
}
func (c *countingEndpoint) Addr() string { return "sink" }

// BenchmarkDigestRollup measures one federation roll-up interval at
// fleet scale: fold queued bus transitions, sweep the whole registry
// into per-cohort aggregates, and marshal the digest datagram(s). The
// sweep is O(streams) CPU once per interval, but the emitted bytes are
// O(cohorts): the bytes/interval metric must track the cohort count,
// not the 10k-stream fleet (8 vs 64 cohorts over the same fleet). The
// ingest hot path stays untouched — BenchmarkRegistryIngest's 0
// allocs/op gate covers that.
func BenchmarkDigestRollup(b *testing.B) {
	const streams = 10_000
	for _, cohorts := range []int{8, 64} {
		b.Run(fmt.Sprintf("%dcohorts-10k", cohorts), func(b *testing.B) {
			reg := sfd.NewRegistry(sfd.NewSimClock(0), func(string) sfd.Detector {
				return sfd.NewFixed(500*clock.Millisecond, 1)
			}, sfd.RegistryOptions{Shards: 64, MaxSilence: -1, EvictAfter: -1})
			filters := make([]string, cohorts)
			for i := range filters {
				filters[i] = fmt.Sprintf("r/c%d/#", i)
			}
			for i := 0; i < streams; i++ {
				name := fmt.Sprintf("r/c%d/s%d", i%cohorts, i)
				reg.Observe(sfd.HeartbeatArrival{From: name, Seq: 1, Inc: 1})
			}
			ep := &countingEndpoint{}
			leaf, err := sfd.NewFederationLeaf(ep, sfd.NewSimClock(0), reg, "agg", sfd.FederationLeafOptions{
				ID: "bench-leaf", Region: "r", Cohorts: filters, Interval: clock.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer leaf.Stop()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				leaf.Rollup(clock.Time(i) * clock.Time(clock.Second))
			}
			b.StopTimer()
			b.ReportMetric(float64(ep.bytes)/float64(b.N), "bytes/interval")
			b.ReportMetric(float64(cohorts), "cohorts")
			b.ReportMetric(float64(streams), "streams")
		})
	}
}

// BenchmarkTraceGeneration measures synthetic-trace throughput (the
// substrate cost underlying every experiment).
func BenchmarkTraceGeneration(b *testing.B) {
	gp, err := trace.Preset("WAN-1")
	if err != nil {
		b.Fatal(err)
	}
	gp.Count = 1 << 62 // effectively unbounded; b.N controls the work
	g := trace.NewGenerator(gp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
